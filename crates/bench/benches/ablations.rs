//! Benchmarks of the moving parts the ablations vary: the load
//! estimator, the controller reallocation step, and the threaded
//! server's dispatch under each proportional-share kernel.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psd_core::controller::ControllerParams;
use psd_core::estimator::LoadEstimator;
use psd_core::PsdController;
use psd_desim::{RateController, WindowObservation};
use psd_server::{PsdServer, SchedulerKind, ServerConfig, Workload};

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator");
    for &history in &[1usize, 5, 20] {
        group.bench_with_input(BenchmarkId::new("observe_estimate", history), &history, |b, &h| {
            let mut e = LoadEstimator::new(3, h);
            let rates = [0.5, 0.8, 0.2];
            b.iter(|| {
                e.observe(black_box(&rates));
                black_box(e.estimate())
            })
        });
    }
    group.finish();
}

fn bench_controller_tick(c: &mut Criterion) {
    c.bench_function("psd_controller_reallocate", |b| {
        let mut ctl = PsdController::new(vec![1.0, 2.0, 3.0], 0.29, ControllerParams::default());
        ctl.initial_rates(3);
        let w = WindowObservation {
            index: 0,
            start: 0.0,
            end: 290.0,
            arrivals: vec![120, 240, 80],
            arrived_work: vec![35.0, 70.0, 23.0],
            shed_work: vec![0.0; 3],
            completions: vec![118, 236, 81],
            backlog: vec![3, 8, 1],
            slowdown_sums: vec![250.0, 900.0, 120.0],
        };
        b.iter(|| ctl.reallocate(black_box(290.0), black_box(&w)))
    });
}

/// End-to-end dispatch latency of the threaded server per kernel: push
/// N requests through a 1-worker server with near-zero service times.
fn bench_server_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_dispatch");
    group.sample_size(10);
    for (name, kind) in [
        ("wfq", SchedulerKind::Wfq),
        ("stride", SchedulerKind::Stride),
        ("drr", SchedulerKind::Drr(2.0)),
        ("lottery", SchedulerKind::Lottery(7)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let server = Arc::new(PsdServer::start(ServerConfig {
                    deltas: vec![1.0, 2.0],
                    mean_cost: 1.0,
                    scheduler: kind,
                    workers: 1,
                    work_unit: Duration::from_nanos(100),
                    workload: Workload::Sleep,
                    control_window: Duration::from_millis(50),
                    estimator_history: 5,
                    ..ServerConfig::default()
                }));
                for i in 0..200u64 {
                    server.submit((i % 2) as usize, 1.0);
                }
                Arc::try_unwrap(server).ok().expect("sole owner").shutdown()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimator, bench_controller_tick, bench_server_kernels);
criterion_main!(benches);
