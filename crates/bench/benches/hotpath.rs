//! Hot-path microbenches for the serving stack (`BENCH_hotpath`
//! trajectory): HTTP codec parse throughput and dispatch-queue submit
//! throughput — the two per-request costs every front-end engine pays
//! before any scheduling policy runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psd_server::{RequestCodec, Response, WriteBuf};

/// One keep-alive GET with a cost query and two headers — the shape
/// the load generator hammers.
const REQUEST: &[u8] =
    b"GET /class1/page?cost=1.500000 HTTP/1.1\r\nX-Class: 1\r\nConnection: keep-alive\r\n\r\n";

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.bench_function("parse_keep_alive_request", |b| {
        let mut codec = RequestCodec::new();
        b.iter(|| {
            for _ in 0..1_000 {
                codec.feed(REQUEST);
                let req = codec.poll().expect("valid").expect("complete");
                black_box(req.cost);
            }
        })
    });
    group.bench_function("parse_byte_fragmented", |b| {
        let mut codec = RequestCodec::new();
        b.iter(|| {
            for _ in 0..100 {
                for chunk in REQUEST.chunks(7) {
                    codec.feed(chunk);
                    let _ = black_box(codec.poll());
                }
            }
        })
    });
    group.bench_function("encode_response", |b| {
        let resp = Response {
            http11: true,
            status: 200,
            reason: "OK",
            keep_alive: true,
            extra_headers: vec![("X-Class", "1".into()), ("X-Slowdown", "2.5000".into())],
            body: bytes::Bytes::from(&b"served path=/class1/page class=1\n"[..]),
        };
        let mut wb = WriteBuf::new();
        b.iter(|| {
            for _ in 0..1_000 {
                wb.push_response(&resp);
                let mut sink = std::io::sink();
                black_box(wb.flush_into(&mut sink).expect("sink accepts all"));
            }
        })
    });
    group.finish();
}

fn bench_queue_submit(c: &mut Criterion) {
    use psd_server::{PsdServer, SchedulerKind, ServerConfig, Workload};
    use std::time::Duration;

    let mut group = c.benchmark_group("queue_submit");
    // Submit+drain cycles through the full facade: arrival shard,
    // dispatch (or wheel lane), execution, completion notification.
    for (label, scheduler) in
        [("wfq_pool", SchedulerKind::Wfq), ("rate_partition_wheel", SchedulerKind::RatePartition)]
    {
        group.bench_with_input(BenchmarkId::new("submit_sync", label), &scheduler, |b, &sched| {
            let server = PsdServer::start(ServerConfig {
                deltas: vec![1.0, 2.0],
                workers: 2,
                work_unit: Duration::from_micros(1),
                scheduler: sched,
                workload: Workload::Sleep,
                control_window: Duration::from_secs(60),
                ..ServerConfig::default()
            });
            b.iter(|| {
                for i in 0..200 {
                    black_box(server.submit_sync(i % 2, 1.0).expect("executes"));
                }
            });
        });
    }
    group.finish();
}

/// The io_uring engine's submit path: what one `io_uring_enter` costs
/// and how batching amortizes it. `nop_batch/N` pushes N no-op SQEs
/// and reaps their CQEs around a single enter — the per-operation cost
/// should fall roughly as 1/N, which is the whole mechanism behind the
/// engine's syscall gate (`tests/syscall_gate.rs`). The echo case runs
/// a registered-buffer write + read round trip over a socketpair, the
/// exact SQE shapes the reactor's hot path submits per request.
/// Self-skips on kernels that refuse io_uring.
fn bench_uring_submit(c: &mut Criterion) {
    use polling::uring::UringEngine;
    use std::os::fd::AsRawFd;

    if !polling::uring::available() {
        eprintln!("skipping uring_submit benches: io_uring unavailable on this kernel");
        return;
    }
    let mut group = c.benchmark_group("uring_submit");
    for batch in [1usize, 32, 256] {
        group.bench_with_input(BenchmarkId::new("nop_batch", batch), &batch, |b, &n| {
            let mut eng = UringEngine::new(512, 8, 4096).expect("ring");
            b.iter(|| {
                for i in 0..n {
                    eng.push_nop(i as u64).expect("push nop");
                }
                eng.submit().expect("enter");
                let mut done = 0;
                while done < n {
                    match eng.pop() {
                        Some(cqe) => {
                            black_box(cqe.result);
                            done += 1;
                        }
                        None => eng.submit_and_wait(None).expect("wait"),
                    }
                }
            })
        });
    }
    group.bench_function("fixed_write_read_echo", |b| {
        let (tx, rx) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        let mut eng = UringEngine::new(64, 8, 4096).expect("ring");
        let write_slot = eng.alloc_slot();
        let read_slot = eng.alloc_slot();
        assert!(eng.slot_is_fixed(write_slot) && eng.slot_is_fixed(read_slot));
        let payload = [0x61u8; 512];
        b.iter(|| {
            eng.push_write(tx.as_raw_fd(), write_slot, &payload, 1).expect("push write");
            eng.push_read(rx.as_raw_fd(), read_slot, 2).expect("push read");
            let mut done = 0;
            while done < 2 {
                match eng.pop() {
                    Some(cqe) => {
                        assert!(cqe.result > 0, "echo op failed: {}", cqe.result);
                        done += 1;
                    }
                    None => eng.submit_and_wait(None).expect("wait"),
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_queue_submit, bench_uring_submit);
criterion_main!(benches);
