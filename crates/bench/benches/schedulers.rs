//! Throughput of the proportional-share kernels (the dispatch hot path
//! of the threaded server): enqueue+dequeue cycles per second for WFQ,
//! Lottery, Stride and DRR at several class counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psd_propshare::{Drr, Lottery, ProportionalScheduler, Stride, Wfq, WorkItem};

fn cycle<S: ProportionalScheduler>(s: &mut S, n_classes: usize, iters: u64) {
    let mut id = 0u64;
    // Keep every class backlogged with 2 items.
    for c in 0..n_classes {
        for _ in 0..2 {
            s.enqueue(c, WorkItem { id, cost: 1.0 + (id % 7) as f64 * 0.3 });
            id += 1;
        }
    }
    for _ in 0..iters {
        let (c, _) = s.dequeue().expect("backlogged");
        s.enqueue(c, WorkItem { id, cost: 1.0 + (id % 7) as f64 * 0.3 });
        id += 1;
    }
    black_box(s.backlog(0));
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_cycle");
    for &n in &[2usize, 8, 64] {
        let weights: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("wfq", n), &n, |b, &n| {
            b.iter(|| cycle(&mut Wfq::new(weights.clone()), n, 1_000))
        });
        group.bench_with_input(BenchmarkId::new("stride", n), &n, |b, &n| {
            b.iter(|| cycle(&mut Stride::new(weights.clone()), n, 1_000))
        });
        group.bench_with_input(BenchmarkId::new("drr", n), &n, |b, &n| {
            b.iter(|| cycle(&mut Drr::new(weights.clone(), 2.0), n, 1_000))
        });
        group.bench_with_input(BenchmarkId::new("lottery", n), &n, |b, &n| {
            b.iter(|| cycle(&mut Lottery::new(weights.clone(), 42), n, 1_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
