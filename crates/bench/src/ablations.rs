//! Ablation studies for the design choices DESIGN.md calls out:
//! estimator history length, fluid vs pinned-rate task servers, and the
//! PSD allocator against the baseline allocators.

use psd_core::baselines::{BacklogProportional, EqualShare, LoadProportional, StrictPriority};
use psd_core::config::PsdConfig;
use psd_core::controller::ControllerParams;
use psd_core::simulation::{run_once, run_with_controller};
use psd_desim::{ArrivalSpec, ClassSpec, RateController, ServiceMode, SimConfig, Simulation};
use psd_dist::rng::SplitMix64;
use psd_dist::{ServiceDist, ServiceDistribution};

use crate::table::Table;
use crate::HarnessParams;

/// Ablation A: estimator history length under bursty (MMPP-2) traffic.
///
/// The paper attributes ratio error to load-estimation error (§4.4);
/// this quantifies how the history window trades adaptivity against
/// smoothing when arrivals are burstier than Poisson.
pub fn estimator_history(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "ablation_estimator",
        "Achieved ratio (target 2.0) vs estimator history, bursty arrivals",
        &["history", "achieved_ratio", "abs_error"],
    );
    let service = ServiceDist::paper_default();
    let ex = service.mean();
    let load = 0.6;
    let lambda = load / 2.0 / ex;
    let (end_tu, warm_tu) = params.horizon();
    t.note(format!("MMPP-2 arrivals, burstiness 3, load {:.0}%", load * 100.0));
    for history in [1usize, 5, 20] {
        let mut ratios = Vec::new();
        for run in 0..params.runs {
            let seed = SplitMix64::derive(params.seed ^ 0xab1a, run);
            let cfg = SimConfig {
                classes: (0..2)
                    .map(|_| ClassSpec {
                        arrival: ArrivalSpec::Bursty {
                            mean_rate: lambda,
                            burstiness: 3.0,
                            sojourn: 2_000.0 * ex,
                        },
                        service: service.clone(),
                    })
                    .collect(),
                end_time: end_tu * ex,
                warmup: warm_tu * ex,
                control_period: 1_000.0 * ex,
                seed,
                ..SimConfig::default()
            };
            let controller = psd_core::PsdController::new(
                vec![1.0, 2.0],
                ex,
                ControllerParams { estimator_history: history, ..Default::default() },
            );
            let out = Simulation::new(cfg, Box::new(controller)).run();
            if let Some(r) = out.slowdown_ratio(1, 0) {
                ratios.push(r);
            }
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        t.push_row(vec![history as f64, mean, (mean - 2.0).abs()]);
    }
    t
}

/// Ablation B: fluid task servers (remaining work carried across rate
/// changes) vs rate-pinned-at-service-start.
pub fn fluid_vs_pinned(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "ablation_fluid",
        "Fluid vs pinned-rate task servers, deltas (1,2), load 70%",
        &["mode", "sim_c1", "sim_c2", "achieved_ratio"],
    );
    t.note("mode 0 = fluid (GPS-style), 1 = pinned at service start");
    let (end, warm) = params.horizon();
    for (code, mode) in [(0.0, ServiceMode::Fluid), (1.0, ServiceMode::PinnedRate)] {
        let mut cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.7).with_horizon(end, warm);
        cfg.service_mode = mode;
        let (mut s0, mut s1, mut n) = (0.0, 0.0, 0u64);
        for run in 0..params.runs {
            let r = run_once(&cfg, SplitMix64::derive(params.seed ^ 0xf1d, run));
            if let (Some(a), Some(b)) = (r.classes[0].mean_slowdown, r.classes[1].mean_slowdown) {
                s0 += a;
                s1 += b;
                n += 1;
            }
        }
        let (s0, s1) = (s0 / n.max(1) as f64, s1 / n.max(1) as f64);
        t.push_row(vec![code, s0, s1, s1 / s0]);
    }
    t
}

/// Ablation C: the Eq. 17 allocator vs every baseline, at one load.
pub fn baselines(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "ablation_baselines",
        "Achieved slowdown ratio (target 2.0) per allocator, load 70%",
        &["allocator", "sim_c1", "sim_c2", "achieved_ratio"],
    );
    t.note(
        "allocator: 0=PSD(Eq.17) 1=EqualShare 2=LoadProportional 3=BacklogProp 4=StrictPriority",
    );
    let (end, warm) = params.horizon();
    let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.7).with_horizon(end, warm);
    let ex = cfg.service.mean();
    type ControllerFactory = Box<dyn Fn() -> Box<dyn RateController>>;
    let make: Vec<(f64, ControllerFactory)> = vec![
        (
            0.0,
            Box::new({
                let cfg = cfg.clone();
                move || Box::new(cfg.controller()) as Box<dyn RateController>
            }),
        ),
        (1.0, Box::new(|| Box::new(EqualShare))),
        (2.0, Box::new(|| Box::new(LoadProportional::new(5)))),
        (3.0, Box::new(|| Box::new(BacklogProportional::new(vec![1.0, 2.0], 1e-3)))),
        (4.0, Box::new(move || Box::new(StrictPriority::new(ex, 5)))),
    ];
    for (code, factory) in make {
        let (mut s0, mut s1, mut n) = (0.0, 0.0, 0u64);
        for run in 0..params.runs {
            let r =
                run_with_controller(&cfg, SplitMix64::derive(params.seed ^ 0xba5e, run), factory());
            if let (Some(a), Some(b)) = (r.classes[0].mean_slowdown, r.classes[1].mean_slowdown) {
                s0 += a;
                s1 += b;
                n += 1;
            }
        }
        let (s0, s1) = (s0 / n.max(1) as f64, s1 / n.max(1) as f64);
        t.push_row(vec![code, s0, s1, if s0 > 0.0 { s1 / s0 } else { f64::NAN }]);
    }
    t
}

/// Ablation D: the closed-loop (feedback) extension of §6 vs the
/// open-loop Eq. 17 controller — achieved ratio and the spread of
/// per-window ratios (short-timescale predictability).
pub fn feedback_gain(params: &HarnessParams) -> Table {
    use psd_core::feedback::{FeedbackParams, FeedbackPsdController};
    let mut t = Table::new(
        "ablation_feedback",
        "Open-loop Eq.17 vs feedback gains, deltas (1,2), load 70%",
        &["gain", "achieved_ratio", "p5_window_ratio", "p50_window_ratio", "p95_window_ratio"],
    );
    let (end, warm) = params.horizon();
    let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.7).with_horizon(end, warm);
    let ex = cfg.service.mean();
    let lambdas = cfg.lambdas();
    for gain in [0.0, 0.3, 1.0] {
        let (mut s0, mut s1, mut n) = (0.0, 0.0, 0u64);
        let mut pooled: Vec<f64> = Vec::new();
        for run in 0..params.runs {
            let ctl = FeedbackPsdController::new(
                vec![1.0, 2.0],
                ex,
                FeedbackParams { gain, ..Default::default() },
            )
            .with_nominal_lambdas(lambdas.clone());
            let r = run_with_controller(
                &cfg,
                SplitMix64::derive(params.seed ^ 0xfee, run),
                Box::new(ctl),
            );
            if let (Some(a), Some(b)) = (r.classes[0].mean_slowdown, r.classes[1].mean_slowdown) {
                s0 += a;
                s1 += b;
                n += 1;
            }
            pooled.extend(&r.window_ratios_vs_class0[1]);
        }
        let (p5, p50, p95) = psd_dist::stats::percentile_triple(&mut pooled).unwrap_or((
            f64::NAN,
            f64::NAN,
            f64::NAN,
        ));
        t.push_row(vec![gain, (s1 / n.max(1) as f64) / (s0 / n.max(1) as f64), p5, p50, p95]);
    }
    t
}

/// Ablation E: load-step adaptivity — windows until the controller's
/// class-0 rate settles near the new Eq. 17 value after a 4x step.
pub fn load_step(params: &HarnessParams) -> Table {
    use psd_core::allocation::psd_rates;
    let mut t = Table::new(
        "ablation_load_step",
        "Estimator-history vs settling windows after a 4x class-0 load step",
        &["history", "rate_before", "rate_after", "settling_windows"],
    );
    let service = ServiceDist::paper_default();
    let ex = service.mean();
    let window = 1_000.0 * ex;
    let switch_at = 25.0 * window;
    for history in [1usize, 5, 20] {
        let (mut rb, mut ra, mut settle, mut n) = (0.0, 0.0, 0.0, 0u64);
        for run in 0..params.runs {
            let seed = SplitMix64::derive(params.seed ^ 0x57e9, run);
            let cfg = SimConfig {
                classes: vec![
                    ClassSpec {
                        arrival: ArrivalSpec::Step {
                            rate_before: 0.1 / ex,
                            rate_after: 0.4 / ex,
                            switch_at,
                        },
                        service: service.clone(),
                    },
                    ClassSpec {
                        arrival: ArrivalSpec::Poisson { rate: 0.2 / ex },
                        service: service.clone(),
                    },
                ],
                end_time: 50.0 * window,
                warmup: 0.0,
                control_period: window,
                seed,
                ..SimConfig::default()
            };
            let ctl = psd_core::PsdController::new(
                vec![1.0, 2.0],
                ex,
                ControllerParams { estimator_history: history, ..Default::default() },
            )
            .with_nominal_lambdas(vec![0.1 / ex, 0.2 / ex]);
            let out = Simulation::new(cfg, Box::new(ctl)).run();
            // Target post-step rate from Eq. 17 at the true new loads.
            let target = psd_rates(&[0.4 / ex, 0.2 / ex], &[1.0, 2.0], ex).unwrap()[0];
            let mut settled_at = None;
            let mut pre = Vec::new();
            let mut post = Vec::new();
            for (time, rates) in &out.rate_history {
                if *time < switch_at {
                    if *time >= 10.0 * window {
                        pre.push(rates[0]);
                    }
                } else {
                    post.push(rates[0]);
                    if settled_at.is_none() && (rates[0] - target).abs() < 0.05 {
                        settled_at = Some((*time - switch_at) / window);
                    }
                }
            }
            rb += pre.iter().sum::<f64>() / pre.len().max(1) as f64;
            ra += post.iter().rev().take(5).sum::<f64>() / 5.0;
            settle += settled_at.unwrap_or(25.0);
            n += 1;
        }
        let nf = n.max(1) as f64;
        t.push_row(vec![history as f64, rb / nf, ra / nf, settle / nf]);
    }
    t
}

/// All ablations.
pub fn all(params: &HarnessParams) -> Vec<Table> {
    vec![
        estimator_history(params),
        fluid_vs_pinned(params),
        baselines(params),
        feedback_gain(params),
        load_step(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessParams {
        HarnessParams { runs: 2, seed: 3, quick: true }
    }

    #[test]
    fn estimator_ablation_runs() {
        let t = estimator_history(&quick());
        assert_eq!(t.rows.len(), 3);
        assert!(t.rows.iter().all(|r| r[1].is_finite() && r[1] > 0.0));
    }

    #[test]
    fn baseline_ablation_separates_psd_from_equal_share() {
        let p = HarnessParams { runs: 4, seed: 9, quick: true };
        let t = baselines(&p);
        let psd_ratio = t.rows[0][3];
        let equal_ratio = t.rows[1][3];
        // PSD pushes toward 2; equal-share of equal loads stays near 1.
        assert!(psd_ratio > equal_ratio, "PSD {psd_ratio} vs equal {equal_ratio}");
    }
}
