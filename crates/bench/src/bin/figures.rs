//! Regenerate every figure of the paper (and the ablations).
//!
//! ```text
//! figures [FIG ...] [--runs N] [--seed S] [--quick] [--json DIR]
//!
//!   FIG     fig2 … fig12, ablations, or all (default: all)
//!   --runs  replications per point (default 20; paper uses 100)
//!   --seed  root seed (default 20040426)
//!   --quick ~10x shorter horizons, 3-point sweeps (smoke mode)
//!   --json  also write <DIR>/<fig>.json for each table
//! ```

use psd_bench::{ablations, figures, table::Table, HarnessParams};

fn main() {
    let mut params = HarnessParams::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut json_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => {
                params.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a positive integer"));
            }
            "--seed" => {
                params.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--quick" => params.quick = true,
            "--json" => {
                json_dir = Some(args.next().unwrap_or_else(|| die("--json needs a directory")));
            }
            "--help" | "-h" => {
                println!("usage: figures [fig2..fig12|ablations|all] [--runs N] [--seed S] [--quick] [--json DIR]");
                return;
            }
            other if other.starts_with("fig") || other == "ablations" || other == "all" => {
                wanted.push(other.to_string());
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    let mut tables: Vec<Table> = Vec::new();
    for w in &wanted {
        match w.as_str() {
            "all" => {
                tables.extend(figures::all(&params));
                tables.extend(ablations::all(&params));
            }
            "fig2" => tables.push(figures::fig2(&params)),
            "fig3" => tables.push(figures::fig3(&params)),
            "fig4" => tables.push(figures::fig4(&params)),
            "fig5" => tables.push(figures::fig5(&params)),
            "fig6" => tables.push(figures::fig6(&params)),
            "fig7" => tables.push(figures::fig7(&params)),
            "fig8" => tables.push(figures::fig8(&params)),
            "fig9" => tables.push(figures::fig9(&params)),
            "fig10" => tables.push(figures::fig10(&params)),
            "fig11" => tables.push(figures::fig11(&params)),
            "fig12" => tables.push(figures::fig12(&params)),
            "ablations" => tables.extend(ablations::all(&params)),
            other => die(&format!("unknown figure: {other}")),
        }
    }

    for t in &tables {
        // Figs 7/8 traces can be long; summarize on stdout.
        if t.rows.len() > 60 && (t.id == "fig7" || t.id == "fig8") {
            let mut short = Table::new(&t.id, &t.title, &["time_tu", "class", "slowdown"]);
            for n in &t.notes {
                short.note(n.clone());
            }
            short.note(format!(
                "({} trace rows; first 30 shown, full set in --json output)",
                t.rows.len()
            ));
            for r in t.rows.iter().take(30) {
                short.push_row(r.clone());
            }
            println!("{}", short.render());
        } else {
            println!("{}", t.render());
        }
    }

    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output dir");
        for t in &tables {
            let path = format!("{dir}/{}.json", t.id);
            std::fs::write(&path, serde_json::to_string_pretty(t).expect("serialize"))
                .expect("write json table");
            eprintln!("wrote {path}");
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
