//! Plain-text + JSON tables for figure output.

use serde::Serialize;

/// A named series table: one row per x-axis point.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Figure id, e.g. `"fig2"`.
    pub id: String,
    /// Human title (matches the paper's caption).
    pub title: String,
    /// Column headers; column 0 is the x-axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
    /// Free-form notes (parameters, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch in {}", self.id);
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for n in &self.notes {
            out.push_str(&format!("   # {n}\n"));
        }
        let width = 14usize;
        let header: Vec<String> = self.columns.iter().map(|c| format!("{c:>width$}")).collect();
        out.push_str(&header.join(" "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.is_nan() {
                        format!("{:>width$}", "-")
                    } else if v.abs() >= 1000.0 || (v.abs() < 0.01 && *v != 0.0) {
                        format!("{v:>width$.3e}")
                    } else {
                        format!("{v:>width$.4}")
                    }
                })
                .collect();
            out.push_str(&cells.join(" "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = Table::new("figX", "demo", &["load", "value"]);
        t.push_row(vec![0.5, 1.25]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.contains("load"));
        assert!(s.contains("1.2500"));
        assert!(s.contains("# a note"));
    }

    #[test]
    fn nan_renders_as_dash() {
        let mut t = Table::new("f", "t", &["x"]);
        t.push_row(vec![f64::NAN]);
        assert!(t.render().contains('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        Table::new("f", "t", &["a", "b"]).push_row(vec![1.0]);
    }
}
