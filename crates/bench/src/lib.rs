//! # psd-bench — figure-reproduction harness and benchmark plumbing
//!
//! One function per figure of the paper's evaluation section (§4,
//! Figures 2–12). Each returns a [`table::Table`] whose rows are the
//! series the paper plots, so the `figures` binary can print them and
//! `EXPERIMENTS.md` can record paper-vs-measured. The criterion benches
//! reuse the same functions at reduced scale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod figures;
pub mod table;

/// Shared harness parameters.
#[derive(Debug, Clone, Copy)]
pub struct HarnessParams {
    /// Replications per data point (paper: 100; default here: 20 to keep
    /// the full regeneration under a few minutes).
    pub runs: u64,
    /// Root seed.
    pub seed: u64,
    /// Shrink horizons ~10× for smoke tests and criterion benches.
    pub quick: bool,
}

impl Default for HarnessParams {
    fn default() -> Self {
        Self { runs: 20, seed: 20040426, quick: false }
    }
}

impl HarnessParams {
    /// Simulation horizon in time units: the paper's 61 000 (10 000
    /// warm-up + measurement to 60 000 + one traced window), or a short
    /// horizon in quick mode.
    pub fn horizon(&self) -> (f64, f64) {
        if self.quick {
            (8_000.0, 1_000.0)
        } else {
            (61_000.0, 10_000.0)
        }
    }

    /// The load sweep on the x-axis of Figs 2–6 and 9–10.
    pub fn load_sweep(&self) -> Vec<f64> {
        if self.quick {
            vec![0.3, 0.6, 0.9]
        } else {
            vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
        }
    }
}
