//! One function per paper figure (Figures 2–12 of §4).
//!
//! Defaults follow §4.1: `BP(α=1.5, k=0.1, p=100)`, equal class loads,
//! 10 000-time-unit warm-up, measurement to 60 000, 1000-unit windows,
//! estimator = mean of the past 5 windows, reallocation every window,
//! results averaged over `params.runs` replications.

use psd_core::config::PsdConfig;
use psd_core::experiment::Experiment;
use psd_dist::{BoundedPareto, ServiceDist};

use crate::table::Table;
use crate::HarnessParams;

fn experiment(
    cfg: PsdConfig,
    params: &HarnessParams,
    salt: u64,
) -> psd_core::experiment::ExperimentReport {
    Experiment::new(cfg).runs(params.runs).base_seed(params.seed.wrapping_add(salt)).run()
}

fn sweep_config(deltas: &[f64], load: f64, params: &HarnessParams) -> PsdConfig {
    let (end, warm) = params.horizon();
    PsdConfig::equal_load(deltas, load).with_horizon(end, warm)
}

/// Figs 2–4 share this shape: simulated vs expected slowdown per class
/// over the load sweep.
fn effectiveness_figure(id: &str, title: &str, deltas: &[f64], params: &HarnessParams) -> Table {
    let n = deltas.len();
    let mut cols: Vec<String> = vec!["load%".into()];
    for i in 0..n {
        cols.push(format!("sim_c{}", i + 1));
        cols.push(format!("exp_c{}", i + 1));
    }
    cols.push("sim_system".into());
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(id, title, &col_refs);
    t.note(format!("deltas = {deltas:?}, BP(1.5, 0.1, 100), runs = {}", params.runs));
    for load in params.load_sweep() {
        let rep = experiment(sweep_config(deltas, load, params), params, (load * 1000.0) as u64);
        let sim = rep.mean_slowdowns();
        let exp = rep.expected_slowdowns().expect("model applies to BP");
        let mut row = vec![load * 100.0];
        for i in 0..n {
            row.push(sim[i]);
            row.push(exp[i]);
        }
        row.push(rep.system_slowdown());
        t.push_row(row);
    }
    t
}

/// Figure 2: two classes, δ = (1, 2).
pub fn fig2(params: &HarnessParams) -> Table {
    effectiveness_figure(
        "fig2",
        "Simulated and expected slowdowns of two classes (delta1:delta2 = 1:2)",
        &[1.0, 2.0],
        params,
    )
}

/// Figure 3: two classes, δ = (1, 4).
pub fn fig3(params: &HarnessParams) -> Table {
    effectiveness_figure(
        "fig3",
        "Simulated and expected slowdowns of two classes (delta1:delta2 = 1:4)",
        &[1.0, 4.0],
        params,
    )
}

/// Figure 4: three classes, δ = (1, 2, 3).
pub fn fig4(params: &HarnessParams) -> Table {
    effectiveness_figure(
        "fig4",
        "Simulated and expected slowdowns of three classes (1:2:3)",
        &[1.0, 2.0, 3.0],
        params,
    )
}

/// Figure 5: 5th/50th/95th percentiles of the per-window slowdown ratio
/// (class 2 / class 1) for δ ratios 2, 4 and 8.
pub fn fig5(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "fig5",
        "Percentiles of simulated slowdown ratios for two classes",
        &[
            "load%", "p5_r2", "p50_r2", "p95_r2", "p5_r4", "p50_r4", "p95_r4", "p5_r8", "p50_r8",
            "p95_r8",
        ],
    );
    t.note(format!("per-window (1000 TU) ratios pooled over {} runs", params.runs));
    for load in params.load_sweep() {
        let mut row = vec![load * 100.0];
        for (salt, ratio) in [(1u64, 2.0), (2, 4.0), (3, 8.0)] {
            let rep = experiment(
                sweep_config(&[1.0, ratio], load, params),
                params,
                1000 + salt * 100 + (load * 100.0) as u64,
            );
            let (p5, p50, p95) =
                rep.ratio_percentiles_vs_class0(1).unwrap_or((f64::NAN, f64::NAN, f64::NAN));
            row.extend([p5, p50, p95]);
        }
        t.push_row(row);
    }
    t
}

/// Figure 6: ratio percentiles for three classes δ = (1, 2, 3).
pub fn fig6(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "fig6",
        "Percentiles of simulated slowdown ratios for three classes",
        &["load%", "p5_c2c1", "p50_c2c1", "p95_c2c1", "p5_c3c1", "p50_c3c1", "p95_c3c1"],
    );
    t.note(format!("deltas = (1,2,3); per-window ratios pooled over {} runs", params.runs));
    for load in params.load_sweep() {
        let rep = experiment(
            sweep_config(&[1.0, 2.0, 3.0], load, params),
            params,
            2000 + (load * 100.0) as u64,
        );
        let (a5, a50, a95) =
            rep.ratio_percentiles_vs_class0(1).unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        let (b5, b50, b95) =
            rep.ratio_percentiles_vs_class0(2).unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        t.push_row(vec![load * 100.0, a5, a50, a95, b5, b50, b95]);
    }
    t
}

/// Figures 7/8 shared shape: per-request slowdowns in the window
/// 60 000–61 000 time units, single run.
fn trace_figure(id: &str, title: &str, load: f64, params: &HarnessParams) -> Table {
    let (end, warm) = params.horizon();
    let trace_from = end - 1_000.0;
    let cfg = PsdConfig::equal_load(&[1.0, 2.0], load)
        .with_horizon(end, warm)
        .with_trace(trace_from, end);
    let report = psd_core::simulation::run_once(&cfg, params.seed ^ 0x7ace);
    let ex = psd_dist::ServiceDistribution::mean(&cfg.service);
    let mut t = Table::new(id, title, &["time_tu", "class", "slowdown"]);
    t.note(format!(
        "single run, load {:.0}%, trace window [{trace_from:.0}, {end:.0}) TU",
        load * 100.0
    ));
    let mut per_class = [0u64; 2];
    let mut max_s: f64 = 0.0;
    for &(class, depart, slowdown) in &report.trace {
        t.push_row(vec![depart / ex, (class + 1) as f64, slowdown]);
        per_class[class] += 1;
        max_s = max_s.max(slowdown);
    }
    t.note(format!(
        "{} class-1 and {} class-2 departures in the window; max slowdown {:.1}",
        per_class[0], per_class[1], max_s
    ));
    t
}

/// Figure 7: individual request slowdowns at 50% load.
pub fn fig7(params: &HarnessParams) -> Table {
    trace_figure("fig7", "Slowdown of individual requests at 50% system load", 0.5, params)
}

/// Figure 8: individual request slowdowns at 90% load.
pub fn fig8(params: &HarnessParams) -> Table {
    trace_figure("fig8", "Slowdown of individual requests at 90% system load", 0.9, params)
}

/// Figure 9: achieved mean slowdown ratios of two classes over the load
/// sweep for δ ratios 2, 4, 8.
pub fn fig9(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "fig9",
        "Simulated slowdown ratios of two classes",
        &["load%", "ratio_d2", "target_2", "ratio_d4", "target_4", "ratio_d8", "target_8"],
    );
    t.note(format!("mean of per-run ratios over {} runs", params.runs));
    for load in params.load_sweep() {
        let mut row = vec![load * 100.0];
        for (salt, ratio) in [(1u64, 2.0), (2, 4.0), (3, 8.0)] {
            let rep = experiment(
                sweep_config(&[1.0, ratio], load, params),
                params,
                9000 + salt * 100 + (load * 100.0) as u64,
            );
            row.push(rep.mean_ratio_vs_class0(1));
            row.push(ratio);
        }
        t.push_row(row);
    }
    t
}

/// Figure 10: achieved ratios for three classes δ = (1, 2, 3).
pub fn fig10(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "fig10",
        "Simulated slowdown ratios of three classes",
        &["load%", "ratio_c2c1", "target_2", "ratio_c3c1", "target_3"],
    );
    t.note(format!("deltas = (1,2,3); mean of per-run ratios over {} runs", params.runs));
    for load in params.load_sweep() {
        let rep = experiment(
            sweep_config(&[1.0, 2.0, 3.0], load, params),
            params,
            10_000 + (load * 100.0) as u64,
        );
        t.push_row(vec![
            load * 100.0,
            rep.mean_ratio_vs_class0(1),
            2.0,
            rep.mean_ratio_vs_class0(2),
            3.0,
        ]);
    }
    t
}

/// Figure 11: influence of the Bounded-Pareto shape parameter α
/// (1.0–2.0) on the two-class slowdowns, fixed load.
pub fn fig11(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "fig11",
        "Influence of the shape parameter of the Bounded Pareto distribution",
        &["alpha", "sim_c1", "exp_c1", "sim_c2", "exp_c2"],
    );
    let load = 0.7;
    t.note(format!("deltas = (1,2), load {:.0}%, k = 0.1, p = 100", load * 100.0));
    let alphas: Vec<f64> = if params.quick {
        vec![1.1, 1.5, 1.9]
    } else {
        (0..=10).map(|i| 1.0 + i as f64 * 0.1).collect()
    };
    for alpha in alphas {
        // α = 1.0 exactly makes E[X] need the log branch; nudge slightly
        // like the paper's plotted 1.0 point effectively does.
        let a = if (alpha - 1.0).abs() < 1e-9 { 1.001 } else { alpha };
        let bp = BoundedPareto::new(a, 0.1, 100.0).expect("valid BP");
        let (end, warm) = params.horizon();
        let per = load / 2.0;
        let cfg = PsdConfig::new(
            vec![
                psd_core::config::ClassConfig { delta: 1.0, load: per },
                psd_core::config::ClassConfig { delta: 2.0, load: per },
            ],
            ServiceDist::BoundedPareto(bp),
        )
        .with_horizon(end, warm);
        let rep = experiment(cfg, params, 11_000 + (alpha * 100.0) as u64);
        let sim = rep.mean_slowdowns();
        let exp = rep.expected_slowdowns().expect("BP model applies");
        t.push_row(vec![alpha, sim[0], exp[0], sim[1], exp[1]]);
    }
    t
}

/// Figure 12: influence of the Bounded-Pareto upper bound `p`
/// (100, 1000, 10000) on the two-class slowdowns, fixed load.
pub fn fig12(params: &HarnessParams) -> Table {
    let mut t = Table::new(
        "fig12",
        "Influence of the upper bound of the Bounded Pareto distribution",
        &["upper_p", "sim_c1", "exp_c1", "sim_c2", "exp_c2"],
    );
    let load = 0.7;
    t.note(format!("deltas = (1,2), load {:.0}%, alpha = 1.5, k = 0.1", load * 100.0));
    let uppers: Vec<f64> =
        if params.quick { vec![100.0, 1000.0] } else { vec![100.0, 1000.0, 10_000.0] };
    for p in uppers {
        let bp = BoundedPareto::new(1.5, 0.1, p).expect("valid BP");
        let (end, warm) = params.horizon();
        let per = load / 2.0;
        let cfg = PsdConfig::new(
            vec![
                psd_core::config::ClassConfig { delta: 1.0, load: per },
                psd_core::config::ClassConfig { delta: 2.0, load: per },
            ],
            ServiceDist::BoundedPareto(bp),
        )
        .with_horizon(end, warm);
        let rep = experiment(cfg, params, 12_000 + p as u64);
        let sim = rep.mean_slowdowns();
        let exp = rep.expected_slowdowns().expect("BP model applies");
        t.push_row(vec![p, sim[0], exp[0], sim[1], exp[1]]);
    }
    t
}

/// All figures, in paper order.
pub fn all(params: &HarnessParams) -> Vec<Table> {
    vec![
        fig2(params),
        fig3(params),
        fig4(params),
        fig5(params),
        fig6(params),
        fig7(params),
        fig8(params),
        fig9(params),
        fig10(params),
        fig11(params),
        fig12(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessParams {
        HarnessParams { runs: 2, seed: 1, quick: true }
    }

    #[test]
    fn fig2_quick_shape() {
        let t = fig2(&quick());
        assert_eq!(t.rows.len(), 3, "quick sweep has 3 loads");
        assert_eq!(t.columns.len(), 6);
        // Slowdown grows with load for both classes.
        assert!(t.rows[2][1] > t.rows[0][1]);
        // Expected curves keep class 2 at exactly twice class 1 (the
        // simulated columns converge only with more runs than a smoke
        // test affords, so assert on the deterministic columns here).
        assert!((t.rows[2][4] / t.rows[2][2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fig7_trace_nonempty() {
        let t = fig7(&quick());
        assert!(!t.rows.is_empty(), "trace window must contain departures");
        for r in &t.rows {
            assert!(r[1] == 1.0 || r[1] == 2.0);
            assert!(r[2] >= 0.0);
        }
    }

    #[test]
    fn fig12_upper_bound_monotone() {
        let t = fig12(&quick());
        // Expected slowdown increases with p (paper §4.5).
        assert!(t.rows[1][2] > t.rows[0][2]);
    }
}
