//! A minimal blocking HTTP/1.1 keep-alive client for the generator's
//! connection workers: one persistent loopback `TcpStream` per worker,
//! one in-flight request at a time, and just enough response parsing to
//! pull the status code and the server's `X-Slowdown` timing header.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What the generator records about one exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exchange {
    /// HTTP status code.
    pub status: u16,
    /// Server-measured slowdown (`X-Slowdown` header), if present.
    pub slowdown: Option<f64>,
    /// The server announced `Connection: close` — the response itself
    /// is valid, but the connection must not be reused.
    pub closed: bool,
    /// The server shed this request at admission (`X-Shed: 1`): not a
    /// failure, but deliberate overload control — accounted separately
    /// from errors by the generator.
    pub shed: bool,
}

impl Exchange {
    /// A 2xx response.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// One persistent connection to the server under test.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connect to `addr` with a read timeout that bounds how long one
    /// exchange may take (a stuck server shows up as an error, not a
    /// hung generator).
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Send one request for `class` with the given `cost` and read the
    /// full response (headers + body), keeping the connection alive.
    pub fn exchange(&mut self, class: usize, cost: f64) -> io::Result<Exchange> {
        let head = format!(
            "GET /loadgen?cost={cost:.6} HTTP/1.1\r\nX-Class: {class}\r\nConnection: keep-alive\r\n\r\n"
        );
        self.writer.write_all(head.as_bytes())?;

        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

        let mut slowdown = None;
        let mut content_length = 0usize;
        let mut close = false;
        let mut shed = false;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated head"));
            }
            let line = line.trim();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                let value = value.trim();
                if name.eq_ignore_ascii_case("x-slowdown") {
                    slowdown = value.parse().ok();
                } else if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.eq_ignore_ascii_case("close");
                } else if name.eq_ignore_ascii_case("x-shed") {
                    shed = value == "1";
                }
            }
        }
        // Drain the body so the next exchange starts at a clean frame.
        let mut remaining = content_length;
        while remaining > 0 {
            let chunk = self.reader.fill_buf()?;
            if chunk.is_empty() {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated body"));
            }
            let n = chunk.len().min(remaining);
            self.reader.consume(n);
            remaining -= n;
        }
        // A close announcement does NOT invalidate this response — the
        // caller records it normally and reconnects before the next one.
        Ok(Exchange { status, slowdown, closed: close, shed })
    }
}

/// One admin response pulled by [`get`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdminBody {
    /// HTTP status code.
    pub status: u16,
    /// The `Content-Type` header (empty when absent).
    pub content_type: String,
    /// The full response body.
    pub body: String,
}

/// Issue one `GET {path}` against the server's admin endpoint on a
/// fresh connection (`Connection: close`) and return the status,
/// content type and full body — the generator's mid-run observability
/// scrape (`/metrics/prometheus`, `/trace`, `/trace/control`,
/// `/healthz`).
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<AdminBody> {
    let mut conn = Connection::connect(addr, timeout)?;
    let head = format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n");
    conn.writer.write_all(head.as_bytes())?;
    let mut status_line = String::new();
    if conn.reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut content_type = String::new();
    loop {
        let mut line = String::new();
        if conn.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated head"));
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let (name, value) = (name.trim(), value.trim());
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(&mut conn.reader, &mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok(AdminBody { status, content_type, body })
}

/// Issue one `PUT /config?{query}` against the server's admin endpoint
/// on a fresh connection (e.g. `query = "deltas=2,1"`) and return the
/// status code — the generator's hot-reconfiguration trigger.
pub fn put_config(addr: SocketAddr, query: &str, timeout: Duration) -> io::Result<u16> {
    let mut conn = Connection::connect(addr, timeout)?;
    let head = format!("PUT /config?{query} HTTP/1.1\r\nConnection: close\r\n\r\n");
    conn.writer.write_all(head.as_bytes())?;
    let mut status_line = String::new();
    if conn.reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
    }
    status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_server::{HttpFrontend, PsdServer, ServerConfig};
    use std::sync::Arc;

    fn tiny_server() -> (HttpFrontend, Arc<PsdServer>) {
        let server = Arc::new(PsdServer::start(ServerConfig {
            deltas: vec![1.0, 2.0],
            workers: 2,
            ..ServerConfig::default()
        }));
        let fe = HttpFrontend::start("127.0.0.1:0", Arc::clone(&server), 1.0).expect("bind");
        (fe, server)
    }

    #[test]
    fn keep_alive_exchanges_reuse_one_connection() {
        let (fe, server) = tiny_server();
        let mut conn = Connection::connect(fe.addr(), Duration::from_secs(5)).expect("connect");
        for i in 0..20 {
            let ex = conn.exchange(i % 2, 1.0).expect("exchange");
            assert!(ex.ok(), "request {i}: status {}", ex.status);
            assert!(ex.slowdown.is_some(), "request {i}: missing X-Slowdown");
        }
        drop(conn);
        assert_eq!(fe.shutdown(Duration::from_secs(5)).expect("drain"), 0);
        let stats = Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
        let total: u64 = stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(total, 20, "all exchanges executed");
    }

    #[test]
    fn drain_closes_idle_keep_alive_connections() {
        let (fe, server) = tiny_server();
        let mut conn = Connection::connect(fe.addr(), Duration::from_secs(5)).expect("connect");
        conn.exchange(0, 1.0).expect("exchange");
        // The connection is idle (kept alive); a drain must not hang.
        assert_eq!(fe.shutdown(Duration::from_secs(5)).expect("drain"), 0);
        Arc::try_unwrap(server).ok().expect("handlers drained").shutdown();
    }
}
