//! # psd-loadgen — open/closed-loop traffic generation for the PSD server
//!
//! The paper validates its Eq. 17 allocation in a discrete-event
//! simulator; this crate closes the remaining loop by hammering the
//! *real* threaded server (`psd-server`) over real TCP sockets and
//! measuring whether the achieved per-class slowdown ratios track the
//! configured δ's end to end.
//!
//! Pieces:
//!
//! * [`scenario`] — the declarative [`Scenario`] catalog (`steady`,
//!   `burst`, `flashcrowd`, `stepload`, `classmix-shift`, `closed`,
//!   `overload`, `reconfig`), built on the arrival processes in
//!   `psd-dist::arrival` plus a piecewise-rate Poisson for flash
//!   crowds. `overload` offers ρ > 1 against an admission cap;
//!   `reconfig` hot-swaps the δ's mid-run through the server's
//!   `PUT /config` admin endpoint.
//! * [`generator`] — the multi-threaded connection-worker pool:
//!   open loop with coordinated-omission-corrected latencies (measured
//!   from each request's *intended* arrival instant) or closed loop
//!   with a fixed session population and think times.
//! * [`histogram`] — a mergeable log-bucketed (HDR-style) latency
//!   histogram: share-nothing per worker, folded after the run.
//! * [`report`] — the [`LoadReport`] JSON/markdown schema with
//!   per-class p50/p99/p999, throughput, mean slowdown, achieved vs.
//!   target slowdown ratios, shed counts, the controller kind and the
//!   `time_to_band_s` convergence metric, plus the CI gate
//!   [`LoadReport::check`].
//! * [`harness`] — spawn the server in-process, run a scenario, drain
//!   gracefully, return the report. The `psd_loadtest` binary is a
//!   thin CLI over this.
//!
//! ```no_run
//! use psd_loadgen::{harness, Scenario};
//!
//! let scenario = Scenario::by_name("steady").unwrap();
//! let out = harness::run_scenario(&scenario).unwrap();
//! println!("{}", out.report.to_markdown());
//! assert!(out.report.check(0.25).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod generator;
pub mod harness;
pub mod histogram;
pub mod report;
pub mod scenario;

pub use generator::{WindowSeries, BAND_WINDOW};
pub use histogram::LogHistogram;
pub use report::{ClassReport, LatencySummary, LoadReport, BAND_TOLERANCE};
pub use scenario::{ArrivalSpec, ClassMix, LoadMode, ReconfigSpec, Scenario, ServerProfile};
