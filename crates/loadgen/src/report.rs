//! The load-test report: per-class throughput, coordinated-omission
//! corrected latency percentiles, achieved slowdown ratios vs. the
//! configured δ's — serializable to JSON (the `BENCH_loadgen.json`
//! schema CI tracks) and renderable as markdown.

use serde::Serialize;

use crate::generator::{GenStats, BAND_WINDOW};
use crate::scenario::{LoadMode, Scenario};

/// The convergence band behind `time_to_band_s`: a window is "in band"
/// when every class's achieved (trailing-pooled) slowdown ratio is
/// within ±25% of its (possibly reconfigured) δ target.
pub const BAND_TOLERANCE: f64 = 0.25;

/// Latency summary in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 90th percentile (ms).
    pub p90_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Largest observed (ms).
    pub max_ms: f64,
}

/// One class's slice of the report.
#[derive(Debug, Clone, Serialize)]
pub struct ClassReport {
    /// Class index (0 = highest class).
    pub class: usize,
    /// Configured differentiation parameter δ.
    pub delta: f64,
    /// Requests attempted, whole run.
    pub sent: u64,
    /// 2xx responses, whole run.
    pub ok: u64,
    /// Non-2xx responses plus transport failures, whole run.
    pub errors: u64,
    /// Requests shed by admission control (503 + `X-Shed`), whole run —
    /// deliberate overload control, not failures.
    pub shed: u64,
    /// 2xx responses inside the measurement window.
    pub measured: u64,
    /// Measured-window throughput (req/s).
    pub throughput_rps: f64,
    /// Latency summary over the measurement window.
    pub latency: LatencySummary,
    /// Mean server-reported slowdown over the measurement window.
    pub mean_slowdown: f64,
    /// Achieved `E[S_class]/E[S_0]`, when both classes have data.
    pub slowdown_ratio_vs_class0: Option<f64>,
    /// Target `δ_class/δ_0`, from the δ's in force at the *end* of the
    /// run (the reconfigured values, when the scenario flips them).
    pub target_ratio_vs_class0: f64,
    /// `|achieved/target − 1|`, when achieved exists. `None` for
    /// reconfig runs: the whole-run mean blends both δ regimes, so no
    /// single target applies — use `time_to_band_s` instead.
    pub ratio_deviation: Option<f64>,
}

/// The complete report of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Scenario name.
    pub scenario: String,
    /// Front-end engine under test (`"threads"` or `"reactor"`), so
    /// `BENCH_loadgen.json` / `BENCH_reactor.json` are self-describing
    /// and the perf trajectory can track the engines separately.
    pub engine: String,
    /// Reactor event-loop shards the run used (recorded even for the
    /// threaded engine, which ignores it, so the JSON schema is
    /// uniform).
    pub shards: usize,
    /// Controller family driving the server's monitor (`"open"` or
    /// `"feedback"`).
    pub controller: String,
    /// Admission cap the server ran with (`null` = no admission
    /// control).
    pub admission_cap: Option<f64>,
    /// `"open"` or `"closed"`.
    pub mode: String,
    /// Total run length in seconds (including warmup).
    pub duration_s: f64,
    /// Warmup excluded from the measured statistics.
    pub warmup_s: f64,
    /// Connection-pool size (open) or session population (closed).
    pub connections: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Configured (initial) δ's.
    pub deltas: Vec<f64>,
    /// When the scenario hot-swaps δ's mid-run: the flip instant as a
    /// fraction of the duration (`null` otherwise).
    pub reconfig_at_frac: Option<f64>,
    /// The replacement δ's of a reconfig run (`null` otherwise) — the
    /// values the per-class ratio targets are computed against.
    pub reconfig_deltas: Option<Vec<f64>>,
    /// Requests attempted, whole run, all classes.
    pub total_sent: u64,
    /// Errors, whole run, all classes.
    pub total_errors: u64,
    /// Requests shed by admission control, whole run, all classes.
    pub total_shed: u64,
    /// Connection workers that aborted on transport failures.
    pub dead_workers: usize,
    /// Time-to-band settling: seconds from the measurement origin
    /// (warmup end — or the reconfiguration instant, when the scenario
    /// hot-swaps δ's) until the trailing-pooled per-window slowdown
    /// ratios enter the ±[`BAND_TOLERANCE`] band around the δ targets
    /// **and hold it for ~3 s of judged windows** (the classical
    /// settling-time definition — a later heavy-tail excursion does
    /// not retract it). `None` = never settled (or fewer than two
    /// classes saw data).
    pub time_to_band_s: Option<f64>,
    /// The tolerance `time_to_band_s` was computed against.
    pub band_tolerance: f64,
    /// Aggregate measured-window throughput (req/s).
    pub throughput_rps: f64,
    /// Per-class detail.
    pub classes: Vec<ClassReport>,
}

fn quantile_ms(h: &crate::histogram::LogHistogram, q: f64) -> f64 {
    h.value_at_quantile(q).unwrap_or(0) as f64 / 1_000.0
}

/// How many trailing [`BAND_WINDOW`]s are pooled for each band
/// judgement (count-weighted): slowdowns are heavy-tailed, so a single
/// 500 ms window mean bounces by ±3× even in steady state — the band
/// must be judged on a few seconds of pooled data to mean anything.
const BAND_SMOOTH_WINDOWS: usize = 6;

/// How many consecutive judged windows must stay in band for the
/// trajectory to count as settled (the classical settling-time
/// definition — "in band and holds for 3 s" — rather than "never
/// leaves again", which a single heavy-tail excursion near the end of
/// the run would void).
const BAND_HOLD_WINDOWS: usize = 6;

/// Seconds from the measurement origin until the (trailing-pooled)
/// windowed slowdown ratios enter the ±[`BAND_TOLERANCE`] band around
/// the target δ ratios and hold it for [`BAND_HOLD_WINDOWS`] judged
/// windows. With a reconfiguration the origin is the flip instant, the
/// targets are the *new* δ's, and the pooling never reaches back
/// across the flip; otherwise the origin is the warmup end. Windows
/// where class 0 or every other class lacks data are neutral (they
/// neither enter nor break the band).
fn time_to_band(scenario: &Scenario, stats: &GenStats) -> Option<f64> {
    if stats.classes.len() < 2 {
        return None;
    }
    let target_deltas: &[f64] = match &scenario.reconfig {
        Some(r) => &r.deltas,
        None => &scenario.deltas,
    };
    let base_delta = target_deltas[0];
    let measure_from_s = match &scenario.reconfig {
        Some(r) => scenario.duration.as_secs_f64() * r.at_frac,
        None => scenario.warmup.as_secs_f64(),
    };
    let win_s = BAND_WINDOW.as_secs_f64();
    let n_windows = stats.classes.iter().map(|c| c.windows.len()).max().unwrap_or(0);
    let first = (measure_from_s / win_s).ceil() as usize;
    // Judge each window on its trailing pooled ratios, clamped to the
    // measurement origin so pre-flip (old-δ) data never leaks in.
    let mut judged: Vec<(usize, bool)> = Vec::new();
    for w in first..n_windows {
        let lo = w.saturating_sub(BAND_SMOOTH_WINDOWS - 1).max(first);
        let Some(s0) = stats.classes[0].windows.mean_range(lo, w).filter(|&s| s > 0.0) else {
            continue;
        };
        let mut any = false;
        let mut in_band = true;
        for (i, c) in stats.classes.iter().enumerate().skip(1) {
            if let Some(si) = c.windows.mean_range(lo, w) {
                any = true;
                let target = target_deltas[i] / base_delta;
                if ((si / s0) / target - 1.0).abs() > BAND_TOLERANCE {
                    in_band = false;
                }
            }
        }
        if any {
            judged.push((w, in_band));
        }
    }
    // Settle = first judged window opening a run of BAND_HOLD_WINDOWS
    // consecutive in-band judgements (a shorter all-in-band run at the
    // very end still counts if at least half the hold is observed).
    for i in 0..judged.len() {
        let horizon = &judged[i..(i + BAND_HOLD_WINDOWS).min(judged.len())];
        if horizon.len() >= BAND_HOLD_WINDOWS.div_ceil(2) && horizon.iter().all(|&(_, ok)| ok) {
            let w = judged[i].0;
            return Some((w as f64 * win_s - measure_from_s).max(0.0));
        }
    }
    None
}

impl LoadReport {
    /// Assemble the report from the generator's raw counters.
    pub fn from_stats(scenario: &Scenario, stats: &GenStats) -> Self {
        let mode = match scenario.mode {
            LoadMode::Open { .. } => "open",
            LoadMode::Closed { .. } => "closed",
        };
        let connections = match scenario.mode {
            LoadMode::Closed { sessions, .. } => sessions,
            LoadMode::Open { .. } => scenario.connections,
        };
        let base_slowdown = stats.classes.first().map(|c| c.slowdown.mean()).unwrap_or(0.0);
        // Ratio targets come from the δ's in force at the *end* of the
        // run; a reconfig run's whole-run achieved ratio blends both
        // regimes, so its per-class `ratio_deviation` is suppressed
        // (judging a blend against either target would be
        // meaningless) — `time_to_band_s`, computed post-flip against
        // the new targets, is the reconfig convergence metric.
        let target_deltas: &[f64] = match &scenario.reconfig {
            Some(r) => &r.deltas,
            None => &scenario.deltas,
        };
        let base_delta = target_deltas.first().copied().unwrap_or(1.0);
        let measured_s = stats.measured_s.max(1e-9);
        let classes: Vec<ClassReport> = stats
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let h = &c.latency_us;
                let achieved = (i > 0 && c.slowdown.count() > 0 && base_slowdown > 0.0)
                    .then(|| c.slowdown.mean() / base_slowdown);
                let target = target_deltas[i] / base_delta;
                ClassReport {
                    class: i,
                    delta: scenario.deltas[i],
                    sent: c.sent,
                    ok: c.ok,
                    errors: c.errors,
                    shed: c.shed,
                    measured: h.count(),
                    throughput_rps: h.count() as f64 / measured_s,
                    latency: LatencySummary {
                        mean_ms: h.mean() / 1_000.0,
                        p50_ms: quantile_ms(h, 0.50),
                        p90_ms: quantile_ms(h, 0.90),
                        p99_ms: quantile_ms(h, 0.99),
                        p999_ms: quantile_ms(h, 0.999),
                        max_ms: h.max() as f64 / 1_000.0,
                    },
                    mean_slowdown: c.slowdown.mean(),
                    slowdown_ratio_vs_class0: achieved,
                    target_ratio_vs_class0: target,
                    ratio_deviation: if scenario.reconfig.is_some() {
                        None
                    } else {
                        achieved.map(|a| (a / target - 1.0).abs())
                    },
                }
            })
            .collect();
        let total_measured: u64 = classes.iter().map(|c| c.measured).sum();
        LoadReport {
            scenario: scenario.name.clone(),
            engine: scenario.server.engine.as_str().to_string(),
            shards: scenario.server.shards,
            controller: scenario.server.controller.as_str().to_string(),
            admission_cap: scenario.server.admission_cap,
            mode: mode.to_string(),
            duration_s: scenario.duration.as_secs_f64(),
            warmup_s: scenario.warmup.as_secs_f64(),
            connections,
            seed: scenario.seed,
            deltas: scenario.deltas.clone(),
            reconfig_at_frac: scenario.reconfig.as_ref().map(|r| r.at_frac),
            reconfig_deltas: scenario.reconfig.as_ref().map(|r| r.deltas.clone()),
            total_sent: stats.total_sent(),
            total_errors: stats.total_errors(),
            total_shed: classes.iter().map(|c| c.shed).sum(),
            dead_workers: stats.dead_workers,
            time_to_band_s: time_to_band(scenario, stats),
            band_tolerance: BAND_TOLERANCE,
            throughput_rps: total_measured as f64 / measured_s,
            classes,
        }
    }

    /// Largest per-class `ratio_deviation` (0.0 when no class pair has
    /// data — callers should also check `classes` counts).
    pub fn max_ratio_deviation(&self) -> f64 {
        self.classes.iter().filter_map(|c| c.ratio_deviation).fold(0.0, f64::max)
    }

    /// CI gate: errors, dead workers, empty classes, a shed highest
    /// class (admission must protect class 0 before touching anything
    /// else), or a slowdown ratio off target by more than
    /// `max_deviation` fail the run. Shed low-class requests do *not*
    /// fail the gate — they are the admission controller doing its job.
    pub fn check(&self, max_deviation: f64) -> Result<(), String> {
        if self.total_errors > 0 {
            return Err(format!("{} non-2xx/transport errors", self.total_errors));
        }
        if self.dead_workers > 0 {
            return Err(format!("{} connection worker(s) died", self.dead_workers));
        }
        if self.classes.len() > 1 && self.classes[0].shed > 0 {
            return Err(format!(
                "admission shed {} highest-class request(s) — lower classes must shed first",
                self.classes[0].shed
            ));
        }
        if let Some(c) = self.classes.iter().find(|c| c.measured == 0) {
            return Err(format!("class {} measured no responses", c.class));
        }
        let dev = self.max_ratio_deviation();
        if dev > max_deviation {
            return Err(format!(
                "slowdown ratio deviates {:.0}% from the δ targets (limit {:.0}%)",
                dev * 100.0,
                max_deviation * 100.0
            ));
        }
        Ok(())
    }

    /// Compact JSON (the `BENCH_loadgen.json` schema).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is total")
    }

    /// Human-readable markdown summary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let engine = match self.engine.as_str() {
            "reactor" => format!("reactor engine ({} shard(s))", self.shards),
            other => format!("{other} engine"),
        };
        let cap = self
            .admission_cap
            .map(|c| format!("admission cap {c:.2}"))
            .unwrap_or_else(|| "no admission cap".into());
        let band =
            self.time_to_band_s.map(|t| format!("{t:.1}s")).unwrap_or_else(|| "not reached".into());
        out.push_str(&format!(
            "## Load report — `{}` ({}, {} loop)\n\n\
             {:.1}s run ({:.1}s warmup), {} connections, seed {}, δ = {:?}\n\n\
             control: `{}` controller, {cap}\n\n\
             total: {} sent, {} errors, {} shed, {:.0} req/s measured, \
             time-to-band (±{:.0}%): {band}\n\n",
            self.scenario,
            engine,
            self.mode,
            self.duration_s,
            self.warmup_s,
            self.connections,
            self.seed,
            self.deltas,
            self.controller,
            self.total_sent,
            self.total_errors,
            self.total_shed,
            self.throughput_rps,
            self.band_tolerance * 100.0,
        ));
        out.push_str(
            "| class | δ | req/s | p50 ms | p99 ms | p99.9 ms | mean slowdown | S ratio | target | dev | shed |\n\
             |---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.classes {
            out.push_str(&format!(
                "| {} | {} | {:.0} | {:.2} | {:.2} | {:.2} | {:.2} | {} | {:.2} | {} | {} |\n",
                c.class,
                c.delta,
                c.throughput_rps,
                c.latency.p50_ms,
                c.latency.p99_ms,
                c.latency.p999_ms,
                c.mean_slowdown,
                c.slowdown_ratio_vs_class0.map(|r| format!("{r:.2}")).unwrap_or_else(|| "—".into()),
                c.target_ratio_vs_class0,
                c.ratio_deviation
                    .map(|d| format!("{:.0}%", d * 100.0))
                    .unwrap_or_else(|| "—".into()),
                c.shed,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ClassCounters;
    use std::time::Duration;

    fn fake_stats() -> (Scenario, GenStats) {
        let mut scenario = Scenario::by_name("steady").unwrap();
        scenario.duration = Duration::from_secs(10);
        scenario.warmup = Duration::from_secs(2);
        let mut c0 = ClassCounters { sent: 100, ok: 100, errors: 0, ..Default::default() };
        let mut c1 = ClassCounters { sent: 100, ok: 99, errors: 1, ..Default::default() };
        for i in 0..100u64 {
            c0.latency_us.record(1_000 + i * 10);
            c0.slowdown.push(1.0);
        }
        for i in 0..99u64 {
            c1.latency_us.record(2_000 + i * 20);
            c1.slowdown.push(2.1);
        }
        (scenario, GenStats { classes: vec![c0, c1], measured_s: 8.0, dead_workers: 0 })
    }

    #[test]
    fn report_computes_ratios_and_throughput() {
        let (scenario, stats) = fake_stats();
        let r = LoadReport::from_stats(&scenario, &stats);
        assert_eq!(r.total_sent, 200);
        assert_eq!(r.total_errors, 1);
        assert_eq!(r.classes[0].slowdown_ratio_vs_class0, None, "class 0 is the base");
        let ratio = r.classes[1].slowdown_ratio_vs_class0.unwrap();
        assert!((ratio - 2.1).abs() < 1e-9);
        assert!((r.classes[1].target_ratio_vs_class0 - 2.0).abs() < 1e-12);
        assert!((r.max_ratio_deviation() - 0.05).abs() < 1e-9);
        assert!((r.classes[0].throughput_rps - 100.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn check_gates_on_errors_and_deviation() {
        let (scenario, stats) = fake_stats();
        let r = LoadReport::from_stats(&scenario, &stats);
        assert!(r.check(0.5).unwrap_err().contains("errors"), "1 error must fail");
        let mut clean = stats.clone();
        clean.classes[1].errors = 0;
        let r = LoadReport::from_stats(&scenario, &clean);
        assert!(r.check(0.5).is_ok());
        assert!(r.check(0.01).unwrap_err().contains("deviates"));
    }

    #[test]
    fn json_roundtrips_key_fields() {
        let (scenario, stats) = fake_stats();
        let json = LoadReport::from_stats(&scenario, &stats).to_json();
        for key in [
            "\"scenario\"",
            "\"engine\"",
            "\"shards\"",
            "\"throughput_rps\"",
            "\"p99_ms\"",
            "\"mean_slowdown\"",
            "\"target_ratio_vs_class0\"",
            "\"classes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn markdown_has_a_row_per_class() {
        let (scenario, stats) = fake_stats();
        let md = LoadReport::from_stats(&scenario, &stats).to_markdown();
        assert!(md.contains("| 0 | 1 |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("Load report"));
    }
}
