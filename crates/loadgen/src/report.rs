//! The load-test report: per-class throughput, coordinated-omission
//! corrected latency percentiles, achieved slowdown ratios vs. the
//! configured δ's — serializable to JSON (the `BENCH_loadgen.json`
//! schema CI tracks) and renderable as markdown.

use serde::Serialize;

use crate::generator::GenStats;
use crate::scenario::{LoadMode, Scenario};

/// Latency summary in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 90th percentile (ms).
    pub p90_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Largest observed (ms).
    pub max_ms: f64,
}

/// One class's slice of the report.
#[derive(Debug, Clone, Serialize)]
pub struct ClassReport {
    /// Class index (0 = highest class).
    pub class: usize,
    /// Configured differentiation parameter δ.
    pub delta: f64,
    /// Requests attempted, whole run.
    pub sent: u64,
    /// 2xx responses, whole run.
    pub ok: u64,
    /// Non-2xx responses plus transport failures, whole run.
    pub errors: u64,
    /// 2xx responses inside the measurement window.
    pub measured: u64,
    /// Measured-window throughput (req/s).
    pub throughput_rps: f64,
    /// Latency summary over the measurement window.
    pub latency: LatencySummary,
    /// Mean server-reported slowdown over the measurement window.
    pub mean_slowdown: f64,
    /// Achieved `E[S_class]/E[S_0]`, when both classes have data.
    pub slowdown_ratio_vs_class0: Option<f64>,
    /// Target `δ_class/δ_0`.
    pub target_ratio_vs_class0: f64,
    /// `|achieved/target − 1|`, when achieved exists.
    pub ratio_deviation: Option<f64>,
}

/// The complete report of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Scenario name.
    pub scenario: String,
    /// Front-end engine under test (`"threads"` or `"reactor"`), so
    /// `BENCH_loadgen.json` / `BENCH_reactor.json` are self-describing
    /// and the perf trajectory can track the engines separately.
    pub engine: String,
    /// Reactor event-loop shards the run used (recorded even for the
    /// threaded engine, which ignores it, so the JSON schema is
    /// uniform).
    pub shards: usize,
    /// `"open"` or `"closed"`.
    pub mode: String,
    /// Total run length in seconds (including warmup).
    pub duration_s: f64,
    /// Warmup excluded from the measured statistics.
    pub warmup_s: f64,
    /// Connection-pool size (open) or session population (closed).
    pub connections: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Configured δ's.
    pub deltas: Vec<f64>,
    /// Requests attempted, whole run, all classes.
    pub total_sent: u64,
    /// Errors, whole run, all classes.
    pub total_errors: u64,
    /// Connection workers that aborted on transport failures.
    pub dead_workers: usize,
    /// Aggregate measured-window throughput (req/s).
    pub throughput_rps: f64,
    /// Per-class detail.
    pub classes: Vec<ClassReport>,
}

fn quantile_ms(h: &crate::histogram::LogHistogram, q: f64) -> f64 {
    h.value_at_quantile(q).unwrap_or(0) as f64 / 1_000.0
}

impl LoadReport {
    /// Assemble the report from the generator's raw counters.
    pub fn from_stats(scenario: &Scenario, stats: &GenStats) -> Self {
        let mode = match scenario.mode {
            LoadMode::Open { .. } => "open",
            LoadMode::Closed { .. } => "closed",
        };
        let connections = match scenario.mode {
            LoadMode::Closed { sessions, .. } => sessions,
            LoadMode::Open { .. } => scenario.connections,
        };
        let base_slowdown = stats.classes.first().map(|c| c.slowdown.mean()).unwrap_or(0.0);
        let base_delta = scenario.deltas.first().copied().unwrap_or(1.0);
        let measured_s = stats.measured_s.max(1e-9);
        let classes: Vec<ClassReport> = stats
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let h = &c.latency_us;
                let achieved = (i > 0 && c.slowdown.count() > 0 && base_slowdown > 0.0)
                    .then(|| c.slowdown.mean() / base_slowdown);
                let target = scenario.deltas[i] / base_delta;
                ClassReport {
                    class: i,
                    delta: scenario.deltas[i],
                    sent: c.sent,
                    ok: c.ok,
                    errors: c.errors,
                    measured: h.count(),
                    throughput_rps: h.count() as f64 / measured_s,
                    latency: LatencySummary {
                        mean_ms: h.mean() / 1_000.0,
                        p50_ms: quantile_ms(h, 0.50),
                        p90_ms: quantile_ms(h, 0.90),
                        p99_ms: quantile_ms(h, 0.99),
                        p999_ms: quantile_ms(h, 0.999),
                        max_ms: h.max() as f64 / 1_000.0,
                    },
                    mean_slowdown: c.slowdown.mean(),
                    slowdown_ratio_vs_class0: achieved,
                    target_ratio_vs_class0: target,
                    ratio_deviation: achieved.map(|a| (a / target - 1.0).abs()),
                }
            })
            .collect();
        let total_measured: u64 = classes.iter().map(|c| c.measured).sum();
        LoadReport {
            scenario: scenario.name.clone(),
            engine: scenario.server.engine.as_str().to_string(),
            shards: scenario.server.shards,
            mode: mode.to_string(),
            duration_s: scenario.duration.as_secs_f64(),
            warmup_s: scenario.warmup.as_secs_f64(),
            connections,
            seed: scenario.seed,
            deltas: scenario.deltas.clone(),
            total_sent: stats.total_sent(),
            total_errors: stats.total_errors(),
            dead_workers: stats.dead_workers,
            throughput_rps: total_measured as f64 / measured_s,
            classes,
        }
    }

    /// Largest per-class `ratio_deviation` (0.0 when no class pair has
    /// data — callers should also check `classes` counts).
    pub fn max_ratio_deviation(&self) -> f64 {
        self.classes.iter().filter_map(|c| c.ratio_deviation).fold(0.0, f64::max)
    }

    /// CI gate: errors, dead workers, empty classes, or a slowdown
    /// ratio off target by more than `max_deviation` fail the run.
    pub fn check(&self, max_deviation: f64) -> Result<(), String> {
        if self.total_errors > 0 {
            return Err(format!("{} non-2xx/transport errors", self.total_errors));
        }
        if self.dead_workers > 0 {
            return Err(format!("{} connection worker(s) died", self.dead_workers));
        }
        if let Some(c) = self.classes.iter().find(|c| c.measured == 0) {
            return Err(format!("class {} measured no responses", c.class));
        }
        let dev = self.max_ratio_deviation();
        if dev > max_deviation {
            return Err(format!(
                "slowdown ratio deviates {:.0}% from the δ targets (limit {:.0}%)",
                dev * 100.0,
                max_deviation * 100.0
            ));
        }
        Ok(())
    }

    /// Compact JSON (the `BENCH_loadgen.json` schema).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is total")
    }

    /// Human-readable markdown summary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let engine = match self.engine.as_str() {
            "reactor" => format!("reactor engine ({} shard(s))", self.shards),
            other => format!("{other} engine"),
        };
        out.push_str(&format!(
            "## Load report — `{}` ({}, {} loop)\n\n\
             {:.1}s run ({:.1}s warmup), {} connections, seed {}, δ = {:?}\n\n\
             total: {} sent, {} errors, {:.0} req/s measured\n\n",
            self.scenario,
            engine,
            self.mode,
            self.duration_s,
            self.warmup_s,
            self.connections,
            self.seed,
            self.deltas,
            self.total_sent,
            self.total_errors,
            self.throughput_rps,
        ));
        out.push_str(
            "| class | δ | req/s | p50 ms | p99 ms | p99.9 ms | mean slowdown | S ratio | target | dev |\n\
             |---|---|---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.classes {
            out.push_str(&format!(
                "| {} | {} | {:.0} | {:.2} | {:.2} | {:.2} | {:.2} | {} | {:.2} | {} |\n",
                c.class,
                c.delta,
                c.throughput_rps,
                c.latency.p50_ms,
                c.latency.p99_ms,
                c.latency.p999_ms,
                c.mean_slowdown,
                c.slowdown_ratio_vs_class0.map(|r| format!("{r:.2}")).unwrap_or_else(|| "—".into()),
                c.target_ratio_vs_class0,
                c.ratio_deviation
                    .map(|d| format!("{:.0}%", d * 100.0))
                    .unwrap_or_else(|| "—".into()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ClassCounters;
    use std::time::Duration;

    fn fake_stats() -> (Scenario, GenStats) {
        let mut scenario = Scenario::by_name("steady").unwrap();
        scenario.duration = Duration::from_secs(10);
        scenario.warmup = Duration::from_secs(2);
        let mut c0 = ClassCounters { sent: 100, ok: 100, errors: 0, ..Default::default() };
        let mut c1 = ClassCounters { sent: 100, ok: 99, errors: 1, ..Default::default() };
        for i in 0..100u64 {
            c0.latency_us.record(1_000 + i * 10);
            c0.slowdown.push(1.0);
        }
        for i in 0..99u64 {
            c1.latency_us.record(2_000 + i * 20);
            c1.slowdown.push(2.1);
        }
        (scenario, GenStats { classes: vec![c0, c1], measured_s: 8.0, dead_workers: 0 })
    }

    #[test]
    fn report_computes_ratios_and_throughput() {
        let (scenario, stats) = fake_stats();
        let r = LoadReport::from_stats(&scenario, &stats);
        assert_eq!(r.total_sent, 200);
        assert_eq!(r.total_errors, 1);
        assert_eq!(r.classes[0].slowdown_ratio_vs_class0, None, "class 0 is the base");
        let ratio = r.classes[1].slowdown_ratio_vs_class0.unwrap();
        assert!((ratio - 2.1).abs() < 1e-9);
        assert!((r.classes[1].target_ratio_vs_class0 - 2.0).abs() < 1e-12);
        assert!((r.max_ratio_deviation() - 0.05).abs() < 1e-9);
        assert!((r.classes[0].throughput_rps - 100.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn check_gates_on_errors_and_deviation() {
        let (scenario, stats) = fake_stats();
        let r = LoadReport::from_stats(&scenario, &stats);
        assert!(r.check(0.5).unwrap_err().contains("errors"), "1 error must fail");
        let mut clean = stats.clone();
        clean.classes[1].errors = 0;
        let r = LoadReport::from_stats(&scenario, &clean);
        assert!(r.check(0.5).is_ok());
        assert!(r.check(0.01).unwrap_err().contains("deviates"));
    }

    #[test]
    fn json_roundtrips_key_fields() {
        let (scenario, stats) = fake_stats();
        let json = LoadReport::from_stats(&scenario, &stats).to_json();
        for key in [
            "\"scenario\"",
            "\"engine\"",
            "\"shards\"",
            "\"throughput_rps\"",
            "\"p99_ms\"",
            "\"mean_slowdown\"",
            "\"target_ratio_vs_class0\"",
            "\"classes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn markdown_has_a_row_per_class() {
        let (scenario, stats) = fake_stats();
        let md = LoadReport::from_stats(&scenario, &stats).to_markdown();
        assert!(md.contains("| 0 | 1 |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("Load report"));
    }
}
