//! End-to-end harness: spawn the real `PsdServer` + HTTP front-end
//! in-process on a loopback socket, run a [`Scenario`] through the
//! generator, drain everything gracefully, and return the
//! [`LoadReport`] — the whole loop the paper only closes in simulation.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use psd_server::{FrontendConfig, HttpFrontend, PsdServer, ServerStats};

use crate::generator;
use crate::report::LoadReport;
use crate::scenario::Scenario;

/// How long the drain may take before we declare handlers stuck.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Result of one harness run: the client-side report plus the
/// server-side final statistics (useful for cross-checking).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The generator's report.
    pub report: LoadReport,
    /// The server's own final per-class statistics.
    pub server_stats: ServerStats,
}

/// Run `scenario` against a freshly started in-process server; returns
/// after the full graceful drain (front-end, then worker pool).
pub fn run_scenario(scenario: &Scenario) -> io::Result<RunOutput> {
    scenario.validate();
    let server = Arc::new(PsdServer::start(scenario.server_config()));
    // Every scenario runs against the engine its profile selects; the
    // connection pool must fit under the front-end cap (plus headroom
    // for reconnects racing their predecessor's close).
    let frontend = HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        FrontendConfig {
            engine: scenario.server.engine,
            shards: scenario.server.shards,
            max_connections: (2 * scenario.connections).max(64),
            ..FrontendConfig::default()
        },
    )?;
    let addr = frontend.addr();

    let stats = generator::run(addr, scenario)?;

    let leftover = frontend.shutdown(DRAIN_TIMEOUT)?;
    if leftover > 0 {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("{leftover} connection handler(s) did not drain"),
        ));
    }
    let server_stats = Arc::try_unwrap(server)
        .map_err(|_| io::Error::other("drained front-end still holds the server"))?
        .shutdown();

    Ok(RunOutput { report: LoadReport::from_stats(scenario, &stats), server_stats })
}

/// Run `scenario` against an already-listening server at `addr`
/// (e.g. a `psd_httpd` on another machine); no server lifecycle is
/// managed.
pub fn run_scenario_against(addr: SocketAddr, scenario: &Scenario) -> io::Result<LoadReport> {
    scenario.validate();
    let stats = generator::run(addr, scenario)?;
    Ok(LoadReport::from_stats(scenario, &stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::LoadMode;

    /// A fast steady smoke: a second of traffic end to end, everything
    /// drains, report is populated. (The slowdown-accuracy assertions
    /// live in the longer `tests/loadgen_e2e.rs` suite.)
    #[test]
    fn short_steady_run_end_to_end() {
        let mut s = Scenario::by_name("steady").unwrap();
        s.duration = Duration::from_millis(1200);
        s.warmup = Duration::from_millis(300);
        s.connections = 8;
        if let LoadMode::Open { arrival } = &mut s.mode {
            *arrival = crate::scenario::ArrivalSpec::Steady { rate: 150.0 };
        }
        let out = run_scenario(&s).expect("harness run");
        let r = &out.report;
        assert!(r.total_sent > 50, "sent {}", r.total_sent);
        assert_eq!(r.total_errors, 0, "{}", r.to_markdown());
        assert_eq!(r.dead_workers, 0);
        assert!(r.classes.iter().all(|c| c.measured > 0), "{}", r.to_markdown());
        // The server executed what the generator sent.
        let server_total: u64 = out.server_stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(server_total, r.total_sent, "server completed everything sent");
    }

    #[test]
    fn short_closed_run_end_to_end() {
        let mut s = Scenario::by_name("closed").unwrap();
        s.duration = Duration::from_millis(1000);
        s.warmup = Duration::from_millis(200);
        s.mode = LoadMode::Closed { sessions: 6, mean_think: Duration::from_millis(5) };
        let out = run_scenario(&s).expect("harness run");
        assert_eq!(out.report.total_errors, 0);
        assert!(out.report.total_sent > 20, "sent {}", out.report.total_sent);
    }
}
