//! End-to-end harness: spawn the real `PsdServer` + HTTP front-end
//! in-process on a loopback socket, run a [`Scenario`] through the
//! generator, drain everything gracefully, and return the
//! [`LoadReport`] — the whole loop the paper only closes in simulation.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use psd_server::{FrontendConfig, HttpFrontend, PsdServer, ServerStats};

use crate::client;
use crate::generator;
use crate::report::LoadReport;
use crate::scenario::Scenario;

/// How long the drain may take before we declare handlers stuck.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// How long one scrape GET may take.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(10);

/// Result of one harness run: the client-side report plus the
/// server-side final statistics (useful for cross-checking).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The generator's report.
    pub report: LoadReport,
    /// The server's own final per-class statistics.
    pub server_stats: ServerStats,
}

/// A mid-run observability scrape: the bodies of the server's
/// observability routes, pulled over a fresh connection while the
/// generator is still offering load — so the exposition reflects a
/// server *under traffic*, not a drained one.
#[derive(Debug, Clone, Default)]
pub struct ObsScrape {
    /// `GET /metrics/prometheus` — the text exposition.
    pub prometheus: String,
    /// `GET /healthz` — the liveness document.
    pub healthz: String,
    /// `GET /trace` — recent request spans with stage decomposition.
    pub trace: String,
    /// `GET /trace/control` — the control-decision flight record.
    pub control_trace: String,
}

/// Run `scenario` against a freshly started in-process server; returns
/// after the full graceful drain (front-end, then worker pool).
pub fn run_scenario(scenario: &Scenario) -> io::Result<RunOutput> {
    let (out, _) = run_with(scenario, None)?;
    Ok(out)
}

/// Like [`run_scenario`], but additionally scrape the observability
/// routes at `at_frac` of the run (from a dedicated timer thread, as
/// the reconfig trigger does). Fails if the run ends before the scrape
/// instant or any route answers non-200.
pub fn run_scenario_scraped(
    scenario: &Scenario,
    at_frac: f64,
) -> io::Result<(RunOutput, ObsScrape)> {
    assert!((0.0..1.0).contains(&at_frac) && at_frac > 0.0, "scrape fraction in (0,1)");
    let (out, scrape) = run_with(scenario, Some(at_frac))?;
    Ok((out, scrape.expect("scrape requested")))
}

/// Pull one observability route, insisting on a 200.
fn scrape_route(addr: SocketAddr, path: &str) -> io::Result<String> {
    let got = client::get(addr, path, SCRAPE_TIMEOUT)?;
    if got.status != 200 {
        return Err(io::Error::other(format!("GET {path} answered {}", got.status)));
    }
    if got.content_type.is_empty() {
        return Err(io::Error::other(format!("GET {path} carried no Content-Type")));
    }
    Ok(got.body)
}

fn run_with(
    scenario: &Scenario,
    scrape_at: Option<f64>,
) -> io::Result<(RunOutput, Option<ObsScrape>)> {
    scenario.validate();
    let server = Arc::new(PsdServer::start(scenario.server_config()));
    // Every scenario runs against the engine its profile selects; the
    // connection pool must fit under the front-end cap (plus headroom
    // for reconnects racing their predecessor's close).
    let frontend = HttpFrontend::start_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        FrontendConfig {
            engine: scenario.server.engine,
            shards: scenario.server.shards,
            max_connections: (2 * scenario.connections).max(64),
            ..FrontendConfig::default()
        },
    )?;
    let addr = frontend.addr();

    // The scrape timer is cancellable like the reconfig trigger: a run
    // that dies early must not sit out the remaining sleep before the
    // caller sees the failure. Returns `Ok(None)` when cancelled.
    let cancel = Arc::new(AtomicBool::new(false));
    let scraper = scrape_at.map(|frac| {
        let fire_at = scenario.duration.mul_f64(frac);
        let cancel = Arc::clone(&cancel);
        thread::spawn(move || -> io::Result<Option<ObsScrape>> {
            let deadline = Instant::now() + fire_at;
            loop {
                if cancel.load(Ordering::Relaxed) {
                    return Ok(None);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                thread::sleep((deadline - now).min(Duration::from_millis(50)));
            }
            Ok(Some(ObsScrape {
                prometheus: scrape_route(addr, "/metrics/prometheus")?,
                healthz: scrape_route(addr, "/healthz")?,
                trace: scrape_route(addr, "/trace?n=64")?,
                control_trace: scrape_route(addr, "/trace/control")?,
            }))
        })
    });

    let stats = generator::run(addr, scenario);
    cancel.store(true, Ordering::Relaxed);
    let scrape_outcome = scraper.map(|h| h.join().expect("scrape thread panicked"));
    // The run's own failure is the primary diagnosis.
    let stats = stats?;
    let scrape = match scrape_outcome {
        None => None,
        Some(outcome) => match outcome? {
            Some(s) => Some(s),
            None => {
                return Err(io::Error::other(
                    "run finished before the scrape instant — no mid-run observability sample",
                ))
            }
        },
    };

    let leftover = frontend.shutdown(DRAIN_TIMEOUT)?;
    if leftover > 0 {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("{leftover} connection handler(s) did not drain"),
        ));
    }
    let server_stats = Arc::try_unwrap(server)
        .map_err(|_| io::Error::other("drained front-end still holds the server"))?
        .shutdown();

    Ok((RunOutput { report: LoadReport::from_stats(scenario, &stats), server_stats }, scrape))
}

/// Run `scenario` against an already-listening server at `addr`
/// (e.g. a `psd_httpd` on another machine); no server lifecycle is
/// managed.
pub fn run_scenario_against(addr: SocketAddr, scenario: &Scenario) -> io::Result<LoadReport> {
    scenario.validate();
    let stats = generator::run(addr, scenario)?;
    Ok(LoadReport::from_stats(scenario, &stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::LoadMode;

    /// A fast steady smoke: a second of traffic end to end, everything
    /// drains, report is populated. (The slowdown-accuracy assertions
    /// live in the longer `tests/loadgen_e2e.rs` suite.)
    #[test]
    fn short_steady_run_end_to_end() {
        let mut s = Scenario::by_name("steady").unwrap();
        s.duration = Duration::from_millis(1200);
        s.warmup = Duration::from_millis(300);
        s.connections = 8;
        if let LoadMode::Open { arrival } = &mut s.mode {
            *arrival = crate::scenario::ArrivalSpec::Steady { rate: 150.0 };
        }
        let out = run_scenario(&s).expect("harness run");
        let r = &out.report;
        assert!(r.total_sent > 50, "sent {}", r.total_sent);
        assert_eq!(r.total_errors, 0, "{}", r.to_markdown());
        assert_eq!(r.dead_workers, 0);
        assert!(r.classes.iter().all(|c| c.measured > 0), "{}", r.to_markdown());
        // The server executed what the generator sent.
        let server_total: u64 = out.server_stats.classes.iter().map(|c| c.completed).sum();
        assert_eq!(server_total, r.total_sent, "server completed everything sent");
    }

    /// The scrape thread samples all four observability routes while
    /// the generator is still running, and the bodies parse with the
    /// same `psd-obs` readers the offline tooling uses.
    #[test]
    fn scraped_run_yields_parseable_observability() {
        let mut s = Scenario::by_name("steady").unwrap();
        s.duration = Duration::from_millis(1500);
        s.warmup = Duration::from_millis(300);
        s.connections = 8;
        if let LoadMode::Open { arrival } = &mut s.mode {
            *arrival = crate::scenario::ArrivalSpec::Steady { rate: 150.0 };
        }
        s.server.control_window = Duration::from_millis(150);
        let (out, scrape) = run_scenario_scraped(&s, 0.6).expect("scraped run");
        assert_eq!(out.report.total_errors, 0, "{}", out.report.to_markdown());
        let families = psd_obs::parse_prometheus(&scrape.prometheus).expect("prometheus parses");
        assert!(
            families.iter().any(|f| f.name == "psd_requests_completed_total"),
            "completion counter exposed"
        );
        let traces = psd_obs::parse_traces(&scrape.control_trace).expect("flight record parses");
        assert!(!traces.is_empty(), "control windows elapsed before the scrape");
        assert!(scrape.healthz.contains("\"status\":\"ok\""), "{}", scrape.healthz);
        assert!(scrape.trace.contains("\"spans\""), "{}", scrape.trace);
    }

    #[test]
    fn short_closed_run_end_to_end() {
        let mut s = Scenario::by_name("closed").unwrap();
        s.duration = Duration::from_millis(1000);
        s.warmup = Duration::from_millis(200);
        s.mode = LoadMode::Closed { sessions: 6, mean_think: Duration::from_millis(5) };
        let out = run_scenario(&s).expect("harness run");
        assert_eq!(out.report.total_errors, 0);
        assert!(out.report.total_sent > 20, "sent {}", out.report.total_sent);
    }
}
