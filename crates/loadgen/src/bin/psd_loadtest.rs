//! `psd_loadtest` — run a load scenario against an in-process PSD
//! server and report slowdown differentiation end to end.
//!
//! ```text
//! psd_loadtest [--scenario steady] [--duration 10s] [--warmup 3s]
//!              [--connections 64] [--rate R] [--deltas 1,2]
//!              [--workers W] [--engine threads|reactor|uring] [--shards N]
//!              [--controller open|feedback] [--gain G]
//!              [--admission-cap C] [--work-unit-us U] [--seed N]
//!              [--trace-sample P] [--obs-scrape DIR]
//!              [--json PATH] [--check MAX_DEV] [--list]
//!
//!   --scenario     steady | burst | flashcrowd | stepload |
//!                  classmix-shift | closed | overload | reconfig
//!                  (default: steady)
//!   --duration     total run length, e.g. 10s / 1500ms (incl. warmup)
//!   --warmup       leading window excluded from statistics
//!   --connections  connection pool size (open) / sessions (closed)
//!   --rate         override the scenario's aggregate arrival rate
//!   --deltas       comma-separated differentiation parameters
//!   --engine       HTTP front-end engine under test: threads
//!                  (one thread per connection, the baseline),
//!                  reactor (epoll event loop), or uring (io_uring
//!                  completion plane; falls back to reactor when the
//!                  kernel refuses io_uring)     (default: threads)
//!   --shards       reactor event-loop shard count
//!                  (default: min(cores, 4); threads engine ignores)
//!   --controller   rate-controller family driving the monitor: open
//!                  (Eq. 17) or feedback (slowdown integral loop);
//!                  gain 0 makes feedback identical to open
//!   --gain         feedback integral gain (default 0.3)
//!   --admission-cap
//!                  target admitted utilization in (0,1): sheds the
//!                  lowest classes (503 + X-Shed) once the offered
//!                  load exceeds it (default: no admission control)
//!   --work-unit-us wall-clock µs per work unit — scales the machine
//!                  rate, e.g. 300 doubles capacity vs the stock 600
//!   --control-window-ms
//!                  allocator monitor window (default 500; short runs
//!                  at high rates converge faster with ~150)
//!   --seed         schedule + cost-draw seed
//!   --trace-sample request-trace sampling probability in [0,1]
//!                  (default 1.0; 0 disables the span ring — the CI
//!                  observability smoke's baseline)
//!   --obs-scrape DIR
//!                  scrape /metrics/prometheus, /healthz, /trace and
//!                  /trace/control at half-run (while traffic is
//!                  offered), validate them with the psd-obs parsers,
//!                  and write the bodies under DIR
//!   --json PATH    also write the JSON report to PATH
//!   --check D      exit non-zero on errors or slowdown-ratio
//!                  deviation > D (e.g. 0.5 for 50%)
//!   --list         print the scenario catalog and exit
//! ```

use std::time::Duration;

use psd_loadgen::scenario::ArrivalSpec;
use psd_loadgen::{harness, LoadMode, Scenario};
use psd_server::{ControllerKind, EngineKind};

fn main() {
    let mut name = "steady".to_string();
    let mut duration: Option<Duration> = None;
    let mut warmup: Option<Duration> = None;
    let mut connections: Option<usize> = None;
    let mut rate: Option<f64> = None;
    let mut deltas: Option<Vec<f64>> = None;
    let mut workers: Option<usize> = None;
    let mut engine: Option<EngineKind> = None;
    let mut shards: Option<usize> = None;
    let mut controller: Option<ControllerKind> = None;
    let mut gain: Option<f64> = None;
    let mut admission_cap: Option<f64> = None;
    let mut work_unit_us: Option<u64> = None;
    let mut control_window_ms: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut trace_sample: Option<f64> = None;
    let mut obs_scrape: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut check: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenario" => name = args.next().unwrap_or_else(|| die("--scenario needs a name")),
            "--duration" => {
                duration = Some(parse_duration(
                    &args.next().unwrap_or_else(|| die("--duration needs a value")),
                ));
            }
            "--warmup" => {
                warmup = Some(parse_duration(
                    &args.next().unwrap_or_else(|| die("--warmup needs a value")),
                ));
            }
            "--connections" => {
                connections = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--connections needs a positive integer")),
                );
            }
            "--rate" => {
                rate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&r: &f64| r > 0.0)
                        .unwrap_or_else(|| die("--rate needs a positive number")),
                );
            }
            "--deltas" => {
                let v = args.next().unwrap_or_else(|| die("--deltas needs a list"));
                let parsed: Vec<f64> = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("bad delta")))
                    .collect();
                if parsed.is_empty() || parsed.iter().any(|&d| d <= 0.0) {
                    die("deltas must be positive");
                }
                deltas = Some(parsed);
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--workers needs a positive integer")),
                );
            }
            "--engine" => {
                engine = Some(
                    args.next()
                        .as_deref()
                        .and_then(EngineKind::parse)
                        .unwrap_or_else(|| die("--engine needs 'threads', 'reactor' or 'uring'")),
                );
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--shards needs a positive integer")),
                );
            }
            "--controller" => {
                controller = Some(
                    args.next()
                        .as_deref()
                        .and_then(ControllerKind::parse)
                        .unwrap_or_else(|| die("--controller needs 'open' or 'feedback'")),
                );
            }
            "--gain" => {
                gain = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&g: &f64| g >= 0.0 && g.is_finite())
                        .unwrap_or_else(|| die("--gain needs a number >= 0")),
                );
            }
            "--admission-cap" => {
                admission_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&c: &f64| c > 0.0 && c < 1.0)
                        .unwrap_or_else(|| die("--admission-cap needs a value in (0,1)")),
                );
            }
            "--work-unit-us" => {
                work_unit_us = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--work-unit-us needs a positive integer")),
                );
            }
            "--control-window-ms" => {
                control_window_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--control-window-ms needs a positive integer")),
                );
            }
            "--seed" => {
                seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer")),
                );
            }
            "--trace-sample" => {
                trace_sample = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&p: &f64| (0.0..=1.0).contains(&p))
                        .unwrap_or_else(|| die("--trace-sample needs a probability in [0,1]")),
                );
            }
            "--obs-scrape" => {
                obs_scrape = Some(args.next().unwrap_or_else(|| die("--obs-scrape needs a dir")));
            }
            "--json" => json_path = Some(args.next().unwrap_or_else(|| die("--json needs a path"))),
            "--check" => {
                check = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&d: &f64| d > 0.0)
                        .unwrap_or_else(|| die("--check needs a positive deviation bound")),
                );
            }
            "--list" => {
                for n in Scenario::catalog() {
                    println!("{n}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: psd_loadtest [--scenario NAME] [--duration 10s] [--warmup 3s] \
                     [--connections N] [--rate R] [--deltas 1,2] [--workers W] \
                     [--engine threads|reactor|uring] [--shards N] \
                     [--controller open|feedback] [--gain G] [--admission-cap C] \
                     [--work-unit-us U] [--control-window-ms M] [--seed N] \
                     [--trace-sample P] [--obs-scrape DIR] \
                     [--json PATH] [--check D] [--list]"
                );
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let mut scenario = Scenario::by_name(&name)
        .unwrap_or_else(|| die(&format!("unknown scenario '{name}' (try --list)")));
    if let Some(d) = duration {
        scenario.duration = d;
    }
    if let Some(w) = warmup {
        scenario.warmup = w;
    } else if scenario.warmup >= scenario.duration {
        // A short custom duration keeps a proportional warmup.
        scenario.warmup = scenario.duration / 4;
    }
    if let Some(c) = connections {
        scenario.connections = c;
        if let LoadMode::Closed { sessions, .. } = &mut scenario.mode {
            *sessions = c;
        }
    }
    if let Some(r) = rate {
        match &mut scenario.mode {
            // Scale every segment so the long-run aggregate equals the
            // requested rate, preserving the scenario's shape.
            LoadMode::Open { arrival } => {
                let scale = r / arrival.mean_rate(scenario.duration).max(1e-9);
                match arrival {
                    ArrivalSpec::Steady { rate } => *rate *= scale,
                    ArrivalSpec::Burst { mean_rate, .. } => *mean_rate *= scale,
                    ArrivalSpec::FlashCrowd { base_rate, peak_rate, .. } => {
                        *base_rate *= scale;
                        *peak_rate *= scale;
                    }
                    ArrivalSpec::Step { rate_before, rate_after, .. } => {
                        *rate_before *= scale;
                        *rate_after *= scale;
                    }
                }
            }
            LoadMode::Closed { .. } => die("--rate applies to open-loop scenarios"),
        }
    }
    if let Some(d) = deltas {
        if d.len() != scenario.deltas.len() {
            // Rebuild the mix so lengths stay consistent. The stock
            // mix-shift weights are meaningless for a different class
            // count, so the shift is disabled rather than faked.
            let template = scenario.mix[0].clone();
            scenario.mix = d.iter().map(|_| template.clone()).collect();
            if scenario.mix_shift.take().is_some() {
                eprintln!(
                    "psd_loadtest: note — custom --deltas class count disables the \
                     scenario's mix shift"
                );
            }
        }
        scenario.deltas = d;
    }
    if let Some(w) = workers {
        scenario.server.workers = w;
    }
    if let Some(e) = engine {
        scenario.server.engine = e;
    }
    if let Some(n) = shards {
        scenario.server.shards = n;
    }
    if let Some(c) = controller {
        scenario.server.controller = c;
    }
    if let Some(g) = gain {
        scenario.server.gain = g;
    }
    if let Some(cap) = admission_cap {
        scenario.server.admission_cap = Some(cap);
    }
    if let Some(u) = work_unit_us {
        scenario.server.work_unit = Duration::from_micros(u);
    }
    if let Some(ms) = control_window_ms {
        scenario.server.control_window = Duration::from_millis(ms);
    }
    if let Some(s) = seed {
        scenario.seed = s;
    }
    if let Some(p) = trace_sample {
        scenario.server.trace_sample = p;
    }
    scenario.validate();

    eprintln!(
        "psd_loadtest: scenario '{}' for {:?} ({} connections, {} engine, {} shard(s), \
         {} controller{})…",
        scenario.name,
        scenario.duration,
        scenario.connections,
        scenario.server.engine.as_str(),
        scenario.server.shards,
        scenario.server.controller.as_str(),
        scenario.server.admission_cap.map(|c| format!(", admission cap {c}")).unwrap_or_default()
    );
    let out = match &obs_scrape {
        None => harness::run_scenario(&scenario)
            .unwrap_or_else(|e| die(&format!("scenario run failed: {e}"))),
        Some(dir) => {
            let (out, scrape) = harness::run_scenario_scraped(&scenario, 0.5)
                .unwrap_or_else(|e| die(&format!("scenario run failed: {e}")));
            write_scrape(dir, &scrape);
            out
        }
    };
    let report = &out.report;

    println!("{}", report.to_markdown());
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("psd_loadtest: JSON report written to {path}");
    }
    if let Some(max_dev) = check {
        if let Err(why) = report.check(max_dev) {
            eprintln!("psd_loadtest: CHECK FAILED — {why}");
            std::process::exit(1);
        }
        eprintln!("psd_loadtest: check passed (max deviation {:.0}%)", max_dev * 100.0);
    }
}

/// Validate the mid-run scrape with the psd-obs parsers and write the
/// bodies under `dir` (created if absent).
fn write_scrape(dir: &str, scrape: &psd_loadgen::harness::ObsScrape) {
    let samples = psd_obs::parse_prometheus(&scrape.prometheus)
        .unwrap_or_else(|e| die(&format!("mid-run /metrics/prometheus does not parse: {e}")));
    let traces = psd_obs::parse_traces(&scrape.control_trace)
        .unwrap_or_else(|e| die(&format!("mid-run /trace/control does not parse: {e}")));
    std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
    let files = [
        ("prometheus.txt", &scrape.prometheus),
        ("healthz.json", &scrape.healthz),
        ("trace.json", &scrape.trace),
        ("control_trace.json", &scrape.control_trace),
    ];
    for (name, body) in files {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, body).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    }
    eprintln!(
        "psd_loadtest: mid-run scrape OK — {} Prometheus samples, {} control trace(s) → {dir}/",
        samples.len(),
        traces.len()
    );
}

/// Parse `10s`, `1500ms`, or a bare number of seconds.
fn parse_duration(s: &str) -> Duration {
    let (num, unit) = match s.strip_suffix("ms") {
        Some(n) => (n, 1e-3),
        None => match s.strip_suffix('s') {
            Some(n) => (n, 1.0),
            None => (s, 1.0),
        },
    };
    let v: f64 = num.parse().unwrap_or_else(|_| die(&format!("bad duration '{s}'")));
    if v <= 0.0 {
        die(&format!("duration must be positive, got '{s}'"));
    }
    Duration::from_secs_f64(v * unit)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
