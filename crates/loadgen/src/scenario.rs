//! The declarative scenario catalog: what traffic to offer, in which
//! loop mode, against which server profile.
//!
//! A [`Scenario`] is data, not code — the same struct drives the
//! `psd_loadtest` CLI, the CI smoke job and the e2e tests, so every
//! workload the generator can produce is nameable and reproducible
//! from a seed. The stock catalog ([`Scenario::by_name`]):
//!
//! | name | shape |
//! |---|---|
//! | `steady` | stationary Poisson arrivals, fixed 50/50 class mix |
//! | `burst` | MMPP-2 on/off arrivals (bursts at 1.8× the mean rate) |
//! | `flashcrowd` | Poisson with a 3× surge through the middle third |
//! | `stepload` | Poisson stepping to 1.6× at half time, and staying |
//! | `classmix-shift` | steady arrivals, mix flips 55/45 → 45/55 at half time |
//! | `closed` | closed-loop: fixed session population with think times |

use std::time::Duration;

use psd_dist::arrival::{ArrivalProcess, Mmpp2, PoissonProcess, StepPoisson};
use psd_dist::rng::Xoshiro256pp;
use psd_dist::{BoundedPareto, ServiceDist};
use psd_server::{ControllerKind, EngineKind, SchedulerKind, ServerConfig, Workload};

/// Piecewise-constant-rate Poisson process: segment `i` holds
/// `rates[i]` until absolute time `ends[i]`; the last rate holds
/// forever. This is the flash-crowd arrival shape (surge up, then back
/// down), which the two-rate [`StepPoisson`] cannot express.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewisePoisson {
    /// Segment end times (strictly increasing; seconds).
    ends: Vec<f64>,
    /// One rate per segment, plus the rate after the last end.
    rates: Vec<f64>,
    now: f64,
}

impl PiecewisePoisson {
    /// `rates.len()` must be `ends.len() + 1`; every rate positive.
    pub fn new(ends: Vec<f64>, rates: Vec<f64>) -> Self {
        assert_eq!(rates.len(), ends.len() + 1, "need one rate per segment plus the tail");
        assert!(ends.windows(2).all(|w| w[0] < w[1]), "segment ends must increase");
        assert!(rates.iter().all(|&r| r.is_finite() && r > 0.0), "rates must be positive");
        Self { ends, rates, now: 0.0 }
    }

    fn rate_at(&self, t: f64) -> f64 {
        for (i, &end) in self.ends.iter().enumerate() {
            if t < end {
                return self.rates[i];
            }
        }
        *self.rates.last().expect("at least one rate")
    }
}

impl ArrivalProcess for PiecewisePoisson {
    fn next_interarrival(&mut self, rng: &mut Xoshiro256pp) -> f64 {
        // Thinning-free piecewise sampling: draw at the current rate;
        // if the gap crosses a boundary, restart there (memorylessness).
        let mut gap = 0.0;
        loop {
            let rate = self.rate_at(self.now);
            let g = -rng.next_open_f64().ln() / rate;
            let boundary = self.ends.iter().copied().find(|&e| e > self.now);
            match boundary {
                Some(b) if self.now + g > b => {
                    gap += b - self.now;
                    self.now = b;
                }
                _ => {
                    gap += g;
                    self.now += g;
                    return gap;
                }
            }
        }
    }
}

/// The arrival shape of an open-loop scenario, in requests/second
/// aggregated over all classes.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Stationary Poisson at `rate`.
    Steady {
        /// Aggregate arrival rate (req/s).
        rate: f64,
    },
    /// MMPP-2 bursts: long-run `mean_rate`, on-state at
    /// `burstiness × mean_rate`, mean on-sojourn `sojourn_s`.
    Burst {
        /// Long-run aggregate rate (req/s).
        mean_rate: f64,
        /// Peak-to-mean ratio (≥ 1).
        burstiness: f64,
        /// Mean burst length in seconds.
        sojourn_s: f64,
    },
    /// Poisson at `base_rate`, surging to `peak_rate` between
    /// `from_frac` and `to_frac` of the scenario duration.
    FlashCrowd {
        /// Rate outside the surge (req/s).
        base_rate: f64,
        /// Rate during the surge (req/s).
        peak_rate: f64,
        /// Surge start, as a fraction of the duration.
        from_frac: f64,
        /// Surge end, as a fraction of the duration.
        to_frac: f64,
    },
    /// Poisson stepping from `rate_before` to `rate_after` at
    /// `at_frac` of the duration — the controller-adaptivity probe.
    Step {
        /// Rate before the step (req/s).
        rate_before: f64,
        /// Rate after the step (req/s).
        rate_after: f64,
        /// Step time, as a fraction of the duration.
        at_frac: f64,
    },
}

impl ArrivalSpec {
    /// Materialize the arrival process for a run of `duration`.
    pub fn build(&self, duration: Duration) -> Box<dyn ArrivalProcess + Send> {
        let d = duration.as_secs_f64();
        match *self {
            ArrivalSpec::Steady { rate } => {
                Box::new(PoissonProcess::new(rate).expect("validated rate"))
            }
            ArrivalSpec::Burst { mean_rate, burstiness, sojourn_s } => {
                Box::new(Mmpp2::bursty(mean_rate, burstiness, sojourn_s).expect("validated MMPP"))
            }
            ArrivalSpec::FlashCrowd { base_rate, peak_rate, from_frac, to_frac } => {
                Box::new(PiecewisePoisson::new(
                    vec![from_frac * d, to_frac * d],
                    vec![base_rate, peak_rate, base_rate],
                ))
            }
            ArrivalSpec::Step { rate_before, rate_after, at_frac } => {
                Box::new(StepPoisson::new(rate_before, rate_after, at_frac * d).expect("validated"))
            }
        }
    }

    /// Long-run aggregate rate implied by the spec (req/s), used for
    /// sizing sanity checks.
    pub fn mean_rate(&self, duration: Duration) -> f64 {
        match *self {
            ArrivalSpec::Steady { rate } => rate,
            ArrivalSpec::Burst { mean_rate, .. } => mean_rate,
            ArrivalSpec::FlashCrowd { base_rate, peak_rate, from_frac, to_frac } => {
                let surge = (to_frac - from_frac).clamp(0.0, 1.0);
                base_rate * (1.0 - surge) + peak_rate * surge
            }
            ArrivalSpec::Step { rate_before, rate_after, at_frac } => {
                let f = at_frac.clamp(0.0, 1.0);
                let _ = duration;
                rate_before * f + rate_after * (1.0 - f)
            }
        }
    }
}

/// Open loop (arrivals independent of responses) or closed loop (a
/// fixed session population with think times, as in `desim::session`).
#[derive(Debug, Clone, PartialEq)]
pub enum LoadMode {
    /// Arrivals from an [`ArrivalSpec`], dispatched to a connection
    /// pool; latency is measured from the *intended* arrival instant
    /// (coordinated-omission corrected).
    Open {
        /// The aggregate arrival shape.
        arrival: ArrivalSpec,
    },
    /// `sessions` independent users, each looping think → request →
    /// response; arrivals throttle themselves under load.
    Closed {
        /// Concurrent session count.
        sessions: usize,
        /// Mean exponential think time between a response and the next
        /// request.
        mean_think: Duration,
    },
}

/// Per-class share of the traffic mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMix {
    /// Relative weight of this class in the mix (normalized over all
    /// classes at dispatch time).
    pub weight: f64,
    /// Cost distribution for this class's `?cost=` draws (work units).
    pub cost: ServiceDist,
}

/// How the in-process server under test is configured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerProfile {
    /// Worker threads (rate-partition mode needs ≥ the class count;
    /// `PsdServer::start` raises it if necessary).
    pub workers: usize,
    /// Wall-clock duration of one work unit.
    pub work_unit: Duration,
    /// Spin or sleep execution.
    pub workload: Workload,
    /// Dispatch discipline.
    pub scheduler: SchedulerKind,
    /// Monitor window for the online PSD allocator.
    pub control_window: Duration,
    /// Estimator history in windows.
    pub estimator_history: usize,
    /// Which HTTP front-end engine serves the run (`--engine` on the
    /// CLI): thread-per-connection baseline or the epoll reactor. The
    /// scenario itself is engine-agnostic — every catalog entry runs
    /// against both.
    pub engine: EngineKind,
    /// Reactor event-loop shards (`--shards` on the CLI; ignored by
    /// the threaded engine). Defaults to min(cores, 4).
    pub shards: usize,
    /// Which controller family drives the server's monitor
    /// (`--controller {open,feedback}`).
    pub controller: ControllerKind,
    /// Feedback integral gain (`--gain`; ignored by `open`).
    pub gain: f64,
    /// Target admitted utilization (`--admission-cap`); `None`
    /// disables admission control.
    pub admission_cap: Option<f64>,
    /// Request-trace sampling probability (`--trace-sample`): the
    /// fraction of requests recorded into the server's span ring.
    /// `0.0` disables tracing entirely — the CI observability smoke
    /// compares a traced run against this baseline.
    pub trace_sample: f64,
}

impl Default for ServerProfile {
    fn default() -> Self {
        // Rate-partition dispatch (the paper's task-server architecture,
        // the regime Eq. 17 controls exactly), sleep workload: accurate
        // on one core, since sleeping burns no cycles the generator
        // needs, and the sub-millisecond work unit keeps the machine
        // rate ≈1410 req/s at the default mix's ≈1.18-unit mean cost.
        Self {
            workers: 2,
            work_unit: Duration::from_micros(600),
            workload: Workload::Sleep,
            scheduler: SchedulerKind::RatePartition,
            control_window: Duration::from_millis(500),
            estimator_history: 5,
            engine: EngineKind::Threads,
            shards: psd_server::default_shards(),
            controller: ControllerKind::Open,
            gain: 0.3,
            admission_cap: None,
            trace_sample: 1.0,
        }
    }
}

/// A mid-run hot reconfiguration: at `at_frac` of the duration the
/// generator issues `PUT /config?deltas=…` against the live server's
/// admin endpoint, and the report's convergence metric
/// (`time_to_band_s`) is measured against the *new* targets from that
/// instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigSpec {
    /// When to fire, as a fraction of the duration, in `(0, 1)`.
    pub at_frac: f64,
    /// The replacement differentiation parameters (same class count).
    pub deltas: Vec<f64>,
}

/// A complete, declarative load-test description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Catalog name (free-form for custom scenarios).
    pub name: String,
    /// Differentiation parameters, one per class (class 0 highest).
    pub deltas: Vec<f64>,
    /// Per-class mix weights and cost distributions (same length as
    /// `deltas`).
    pub mix: Vec<ClassMix>,
    /// If set, at `(frac, weights)` the mix weights are replaced —
    /// the `classmix-shift` scenario's knob.
    pub mix_shift: Option<(f64, Vec<f64>)>,
    /// If set, the generator hot-swaps the server's δ's mid-run via the
    /// admin endpoint — the `reconfig` scenario's knob.
    pub reconfig: Option<ReconfigSpec>,
    /// Open or closed loop.
    pub mode: LoadMode,
    /// Total run length (includes warmup).
    pub duration: Duration,
    /// Leading window excluded from the measured statistics.
    pub warmup: Duration,
    /// Connection-pool size (open loop) — must cover the expected
    /// in-flight count; closed loop uses one connection per session.
    pub connections: usize,
    /// Experiment seed (schedules and cost draws are deterministic).
    pub seed: u64,
    /// In-process server profile.
    pub server: ServerProfile,
}

/// The default cost distribution: a bounded Pareto in the paper's
/// α=1.5 shape, with the support pulled in on both sides — away from
/// zero so the smallest request is still ≳1 ms of service (above
/// `thread::sleep` granularity), and capped at 10 units so a single
/// tail draw cannot blow up the mean-slowdown estimator inside a
/// seconds-long measurement window.
fn default_cost() -> ServiceDist {
    ServiceDist::BoundedPareto(BoundedPareto::new(1.5, 0.5, 10.0).expect("valid BP"))
}

fn even_mix(n: usize) -> Vec<ClassMix> {
    (0..n).map(|_| ClassMix { weight: 1.0, cost: default_cost() }).collect()
}

impl Scenario {
    /// Names in the stock catalog, in presentation order.
    pub fn catalog() -> &'static [&'static str] {
        &[
            "steady",
            "burst",
            "flashcrowd",
            "stepload",
            "classmix-shift",
            "closed",
            "overload",
            "reconfig",
        ]
    }

    /// Look up a stock scenario by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        // Sized against the default [`ServerProfile`]: a 600 µs work
        // unit and the ~1.18-unit mean cost give ≈1410 req/s of machine
        // capacity, so the steady rate offers ≈0.75 load — enough
        // queueing for the slowdown differentiation to be measurable,
        // with margin against both the allocator's overload fallback
        // and the nonlinear M/G/1 blow-up near saturation.
        let base_rate = 1050.0;
        let base = |mode: LoadMode| Scenario {
            name: name.to_string(),
            deltas: vec![1.0, 2.0],
            mix: even_mix(2),
            mix_shift: None,
            reconfig: None,
            mode,
            duration: Duration::from_secs(20),
            warmup: Duration::from_secs(4),
            connections: 48,
            seed: 42,
            server: ServerProfile::default(),
        };
        match name {
            "steady" => {
                Some(base(LoadMode::Open { arrival: ArrivalSpec::Steady { rate: base_rate } }))
            }
            "burst" => Some(base(LoadMode::Open {
                arrival: ArrivalSpec::Burst {
                    // Peaks near machine capacity with sojourns longer
                    // than the estimator memory, so the allocator can
                    // track the modulation instead of averaging it away
                    // (sub-window bursts starve the low class wildly).
                    mean_rate: 0.5 * base_rate,
                    burstiness: 1.8,
                    sojourn_s: 2.0,
                },
            })),
            "flashcrowd" => Some(base(LoadMode::Open {
                arrival: ArrivalSpec::FlashCrowd {
                    // The surge approaches (but stays under) machine
                    // capacity, so the crowd is survivable and the
                    // allocator's reaction is visible in the report.
                    base_rate: 0.5 * base_rate,
                    peak_rate: 1.28 * base_rate,
                    from_frac: 1.0 / 3.0,
                    to_frac: 2.0 / 3.0,
                },
            })),
            "stepload" => Some(base(LoadMode::Open {
                arrival: ArrivalSpec::Step {
                    rate_before: 0.6 * base_rate,
                    rate_after: 1.0 * base_rate,
                    at_frac: 0.5,
                },
            })),
            "classmix-shift" => {
                let mut s =
                    base(LoadMode::Open { arrival: ArrivalSpec::Steady { rate: base_rate } });
                s.mix[0].weight = 0.55;
                s.mix[1].weight = 0.45;
                s.mix_shift = Some((0.5, vec![0.45, 0.55]));
                Some(s)
            }
            "closed" => {
                Some(base(LoadMode::Closed { sessions: 64, mean_think: Duration::from_millis(50) }))
            }
            "overload" => {
                // Offered ρ ≈ 1.3 — Eq. 17 alone has no feasible
                // solution here. The 0.9 admission cap restores
                // feasibility by shedding the lowest class at the door
                // (503 + Connection: close), so class 0 keeps its PSD
                // band through the overload.
                //
                // The work unit is doubled (same dimensionless loads,
                // half the request rate): an overload experiment whose
                // *generator* needs more CPU than the server leaves
                // the control plane measuring scheduler noise, not
                // load. Connections are sized so the door actually
                // sees ρ ≈ 1.3 — a small blocking pool would throttle
                // the offered load to the completion rate and the
                // admission controller would under-measure the
                // overload.
                let mut s = base(LoadMode::Open {
                    arrival: ArrivalSpec::Steady { rate: 0.865 * base_rate },
                });
                s.connections = 128;
                s.warmup = Duration::from_secs(8);
                s.server.work_unit = Duration::from_micros(1200);
                // A faster control window (estimator memory 1.5 s
                // instead of 2.5 s) so admission engages before the
                // overload transient piles a multi-second backlog that
                // would take the whole run to drain at cap headroom.
                s.server.control_window = Duration::from_millis(300);
                s.server.admission_cap = Some(0.9);
                Some(s)
            }
            "reconfig" => {
                // δ = (1, 2) flips to (1, 1) at half time through the
                // admin endpoint — the differentiation gap collapses
                // *live*, no restart — and the report measures
                // time-to-band against the new (equal-slowdown)
                // targets from the flip instant. An equalizing flip is
                // the robust probe: extreme δ ratios sit near the
                // band edge on a real substrate (the M/G/1 "+1" term
                // compresses achieved ratios toward 1), while the
                // equal target lands mid-band once the controller has
                // genuinely converged.
                let mut s =
                    base(LoadMode::Open { arrival: ArrivalSpec::Steady { rate: base_rate } });
                s.reconfig = Some(ReconfigSpec { at_frac: 0.5, deltas: vec![1.0, 1.0] });
                s.server.controller = ControllerKind::Feedback;
                Some(s)
            }
            _ => None,
        }
    }

    /// The [`ServerConfig`] this scenario runs against, with `E[X]`
    /// derived from the mix's cost distributions.
    pub fn server_config(&self) -> ServerConfig {
        use psd_dist::ServiceDistribution;
        let wsum: f64 = self.mix.iter().map(|m| m.weight).sum();
        let mean_cost: f64 =
            self.mix.iter().map(|m| m.weight / wsum * m.cost.mean()).sum::<f64>().max(1e-6);
        ServerConfig {
            deltas: self.deltas.clone(),
            mean_cost,
            scheduler: self.server.scheduler,
            // Rate-partition mode floors this to the class count itself
            // (one runnable thread per serial virtual task server).
            workers: self.server.workers,
            work_unit: self.server.work_unit,
            workload: self.server.workload,
            control_window: self.server.control_window,
            estimator_history: self.server.estimator_history,
            controller: self.server.controller,
            gain: self.server.gain,
            admission_cap: self.server.admission_cap,
            trace_sample: self.server.trace_sample,
            ..ServerConfig::default()
        }
    }

    /// Panic on nonsensical configurations (mismatched lengths, empty
    /// mixes, zero durations, …) before any thread spawns.
    pub fn validate(&self) {
        assert!(!self.deltas.is_empty(), "need at least one class");
        assert_eq!(self.mix.len(), self.deltas.len(), "one mix entry per class");
        assert!(self.deltas.iter().all(|&d| d.is_finite() && d > 0.0), "deltas must be positive");
        assert!(self.mix.iter().any(|m| m.weight > 0.0), "mix needs some weight");
        assert!(self.mix.iter().all(|m| m.weight >= 0.0), "mix weights must be non-negative");
        assert!(self.duration > self.warmup, "duration must exceed warmup");
        assert!(self.connections >= 1, "need at least one connection");
        if let Some((frac, w)) = &self.mix_shift {
            assert!((0.0..1.0).contains(frac), "mix shift fraction in [0, 1)");
            assert_eq!(w.len(), self.mix.len(), "shifted mix length");
            assert!(w.iter().any(|&x| x > 0.0), "shifted mix needs some weight");
        }
        if let Some(r) = &self.reconfig {
            assert!((0.0..1.0).contains(&r.at_frac) && r.at_frac > 0.0, "reconfig frac in (0,1)");
            assert_eq!(r.deltas.len(), self.deltas.len(), "reconfig deltas length");
            assert!(r.deltas.iter().all(|&d| d.is_finite() && d > 0.0), "reconfig deltas positive");
        }
        if let Some(cap) = self.server.admission_cap {
            assert!(cap > 0.0 && cap < 1.0, "admission cap in (0,1)");
        }
        assert!(self.server.gain >= 0.0 && self.server.gain.is_finite(), "gain must be >= 0");
        if let LoadMode::Closed { sessions, .. } = self.mode {
            assert!(sessions >= 1, "need at least one session");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_all_resolve() {
        for name in Scenario::catalog() {
            let s = Scenario::by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(&s.name, name);
            s.validate();
        }
        assert!(Scenario::by_name("nope").is_none());
    }

    #[test]
    fn piecewise_rates_follow_segments() {
        let mut p = PiecewisePoisson::new(vec![10.0, 20.0], vec![100.0, 400.0, 100.0]);
        let mut rng = Xoshiro256pp::seed_from(5);
        let mut t = 0.0;
        let mut counts = [0u64; 3];
        while t < 30.0 {
            t += p.next_interarrival(&mut rng);
            if t < 10.0 {
                counts[0] += 1;
            } else if t < 20.0 {
                counts[1] += 1;
            } else if t < 30.0 {
                counts[2] += 1;
            }
        }
        let r0 = counts[0] as f64 / 10.0;
        let r1 = counts[1] as f64 / 10.0;
        let r2 = counts[2] as f64 / 10.0;
        assert!((r0 - 100.0).abs() / 100.0 < 0.15, "segment 0 rate {r0}");
        assert!((r1 - 400.0).abs() / 400.0 < 0.15, "segment 1 rate {r1}");
        assert!((r2 - 100.0).abs() / 100.0 < 0.15, "segment 2 rate {r2}");
    }

    #[test]
    #[should_panic(expected = "one rate per segment")]
    fn piecewise_rejects_mismatched_lengths() {
        PiecewisePoisson::new(vec![1.0], vec![1.0]);
    }

    #[test]
    fn arrival_specs_build_and_report_mean_rate() {
        let d = Duration::from_secs(10);
        let specs = [
            ArrivalSpec::Steady { rate: 100.0 },
            ArrivalSpec::Burst { mean_rate: 100.0, burstiness: 3.0, sojourn_s: 0.5 },
            ArrivalSpec::FlashCrowd {
                base_rate: 50.0,
                peak_rate: 200.0,
                from_frac: 0.25,
                to_frac: 0.75,
            },
            ArrivalSpec::Step { rate_before: 50.0, rate_after: 150.0, at_frac: 0.5 },
        ];
        let mut rng = Xoshiro256pp::seed_from(3);
        for spec in &specs {
            let mut p = spec.build(d);
            assert!(p.next_interarrival(&mut rng) > 0.0);
            assert!(spec.mean_rate(d) > 0.0);
        }
        assert_eq!(specs[0].mean_rate(d), 100.0);
        assert_eq!(specs[3].mean_rate(d), 100.0);
        assert!((specs[2].mean_rate(d) - 125.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duration must exceed warmup")]
    fn validate_catches_bad_horizon() {
        let mut s = Scenario::by_name("steady").unwrap();
        s.warmup = s.duration;
        s.validate();
    }

    #[test]
    fn server_config_uses_mix_mean_cost() {
        let s = Scenario::by_name("steady").unwrap();
        let cfg = s.server_config();
        use psd_dist::ServiceDistribution;
        let want = s.mix[0].cost.mean();
        assert!((cfg.mean_cost - want).abs() < 1e-12, "even mix of equal dists keeps E[X]");
        assert_eq!(cfg.deltas, s.deltas);
    }
}
