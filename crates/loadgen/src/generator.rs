//! The traffic engine: a multi-threaded connection-worker pool driving
//! the server over real TCP, in open loop (arrival schedule from
//! `psd-dist::arrival`, latency measured from the *intended* arrival
//! instant so coordinated omission cannot hide queueing) or closed loop
//! (a fixed session population with exponential think times).

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use psd_dist::rng::{SplitMix64, Xoshiro256pp};
use psd_dist::stats::Welford;
use psd_dist::ServiceDistribution;

use crate::client::{Connection, Exchange};
use crate::histogram::LogHistogram;
use crate::scenario::{LoadMode, Scenario};

/// Floor on sampled costs: keeps every request at least a fraction of a
/// work unit so degenerate draws cannot produce sub-measurable service.
const MIN_COST: f64 = 0.05;

/// How long a connection worker waits for one response before calling
/// the exchange failed.
const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(30);

/// Width of the convergence-tracking windows behind the report's
/// `time_to_band_s` metric: measured slowdowns are bucketed into
/// windows of this duration so the per-class slowdown-ratio
/// *trajectory* (not just the run mean) is observable.
pub const BAND_WINDOW: Duration = Duration::from_millis(500);

/// Per-class slowdown means bucketed by [`BAND_WINDOW`] — mergeable
/// across workers, queried per window by the report's time-to-band
/// computation.
#[derive(Debug, Clone, Default)]
pub struct WindowSeries {
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl WindowSeries {
    /// Record one slowdown at `at` (time since run start).
    pub fn record(&mut self, at: Duration, slowdown: f64) {
        let idx = (at.as_nanos() / BAND_WINDOW.as_nanos()) as usize;
        if self.sums.len() <= idx {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += slowdown;
        self.counts[idx] += 1;
    }

    /// Element-wise merge.
    pub fn merge(&mut self, other: &WindowSeries) {
        if self.sums.len() < other.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, (&s, &c)) in other.sums.iter().zip(&other.counts).enumerate() {
            self.sums[i] += s;
            self.counts[i] += c;
        }
    }

    /// Number of windows touched so far.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Mean slowdown of window `idx` (`None` when it saw no data).
    pub fn mean(&self, idx: usize) -> Option<f64> {
        let c = *self.counts.get(idx)?;
        (c > 0).then(|| self.sums[idx] / c as f64)
    }

    /// Pooled mean over the window range `lo..=hi` (count-weighted —
    /// the statistically meaningful smoothing for band judgements on a
    /// heavy-tailed slowdown distribution, where single-window means
    /// bounce by ±3×). `None` when the range saw no data.
    pub fn mean_range(&self, lo: usize, hi: usize) -> Option<f64> {
        let hi = hi.min(self.sums.len().saturating_sub(1));
        let (mut sum, mut count) = (0.0, 0u64);
        for w in lo..=hi {
            sum += self.sums.get(w).copied().unwrap_or(0.0);
            count += self.counts.get(w).copied().unwrap_or(0);
        }
        (count > 0).then(|| sum / count as f64)
    }
}

/// One scheduled request of the open-loop plan.
#[derive(Debug, Clone, Copy)]
struct Job {
    /// Intended send instant, as an offset from the run start.
    intended: Duration,
    class: usize,
    cost: f64,
}

/// FIFO handoff between the schedule and the connection workers.
#[derive(Default)]
struct JobQueue {
    inner: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        let mut g = self.inner.lock();
        g.0.push_back(job);
        drop(g);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.inner.lock().1 = true;
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<Job> {
        let mut g = self.inner.lock();
        loop {
            if let Some(j) = g.0.pop_front() {
                return Some(j);
            }
            if g.1 {
                return None;
            }
            self.ready.wait(&mut g);
        }
    }
}

/// Per-class measurements accumulated by one worker (merged at join).
#[derive(Debug, Clone, Default)]
pub struct ClassCounters {
    /// Requests attempted, whole run.
    pub sent: u64,
    /// 2xx responses, whole run.
    pub ok: u64,
    /// Non-2xx responses plus transport failures, whole run. A shed
    /// response that violates the shed contract (not `503` or not
    /// `Connection: close`) counts here, not in `shed`.
    pub errors: u64,
    /// Requests shed by admission control (`503` + `X-Shed: 1` +
    /// `Connection: close`), whole run — deliberate overload control,
    /// accounted separately from `errors`.
    pub shed: u64,
    /// Latencies of 2xx responses inside the measurement window, in
    /// microseconds (open loop: from the intended arrival instant).
    pub latency_us: LogHistogram,
    /// Server-reported `X-Slowdown` of measured 2xx responses.
    pub slowdown: Welford,
    /// Slowdowns bucketed into [`BAND_WINDOW`]s over the whole run —
    /// the trajectory behind the report's `time_to_band_s`.
    pub windows: WindowSeries,
}

impl ClassCounters {
    fn merge(&mut self, other: &ClassCounters) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.errors += other.errors;
        self.shed += other.shed;
        self.latency_us.merge(&other.latency_us);
        self.slowdown.merge(&other.slowdown);
        self.windows.merge(&other.windows);
    }
}

/// The generator's raw output: per-class counters plus run geometry.
#[derive(Debug, Clone)]
pub struct GenStats {
    /// Per-class merged counters.
    pub classes: Vec<ClassCounters>,
    /// Seconds inside the measurement window (duration − warmup).
    pub measured_s: f64,
    /// Worker threads that aborted on transport errors.
    pub dead_workers: usize,
}

impl GenStats {
    /// Total attempted requests.
    pub fn total_sent(&self) -> u64 {
        self.classes.iter().map(|c| c.sent).sum()
    }

    /// Total errors.
    pub fn total_errors(&self) -> u64 {
        self.classes.iter().map(|c| c.errors).sum()
    }
}

/// Draw a class index from `weights` (not necessarily normalized).
fn pick_class(weights: &[f64], rng: &mut Xoshiro256pp) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.next_open_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Record one finished exchange into `c`. A 2xx response counts even
/// when the server announced `Connection: close` alongside it; `at` is
/// the request's time since run start (intended instant in open loop),
/// and responses before `warmup` are excluded from the measured
/// statistics but still feed the trajectory windows.
fn record(
    c: &mut ClassCounters,
    outcome: &std::io::Result<Exchange>,
    latency: Duration,
    at: Duration,
    warmup: Duration,
) {
    match outcome {
        Ok(ex) if ex.ok() => {
            c.ok += 1;
            if let Some(s) = ex.slowdown {
                c.windows.record(at, s);
            }
            if at >= warmup {
                c.latency_us.record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
                if let Some(s) = ex.slowdown {
                    c.slowdown.push(s);
                }
            }
        }
        // The shed contract: 503, tagged, and closing. Anything tagged
        // `X-Shed` that breaks the contract is a server bug — an error.
        Ok(ex) if ex.shed && ex.status == 503 && ex.closed => c.shed += 1,
        Ok(_) | Err(_) => c.errors += 1,
    }
}

/// After `record`, apply the shared connection policy: keep the
/// connection, or reconnect when the server said `Connection: close`
/// (benign) or the exchange failed outright. Returns `Some(died)` when
/// the worker must stop — `died` is true only for hard transport
/// failures (a refused reconnect after a server-initiated close just
/// means the server is going away; that stop is clean).
fn settle_connection(
    conn: &mut Connection,
    addr: SocketAddr,
    outcome: &std::io::Result<Exchange>,
) -> Option<bool> {
    let hard_failure = match outcome {
        Ok(ex) if !ex.closed => return None,
        Ok(_) => false,
        Err(_) => true,
    };
    match Connection::connect(addr, EXCHANGE_TIMEOUT) {
        Ok(fresh) => {
            *conn = fresh;
            None
        }
        Err(_) => Some(hard_failure),
    }
}

fn new_counters(n: usize) -> Vec<ClassCounters> {
    (0..n).map(|_| ClassCounters::default()).collect()
}

/// Run `scenario` against a server listening on `addr`; blocks until
/// the run completes and every worker joined. A `reconfig` spec fires
/// its `PUT /config` from a dedicated timer thread at the configured
/// instant (wall clock, not the generator's look-ahead schedule); a
/// failed or rejected reconfiguration fails the whole run.
pub fn run(addr: SocketAddr, scenario: &Scenario) -> std::io::Result<GenStats> {
    use std::sync::atomic::{AtomicBool, Ordering};

    scenario.validate();
    // The timer is cancellable: a run that dies early must not sit out
    // the remaining sleep (and then PUT against a dead server) before
    // the caller sees the failure. Returns whether the PUT fired.
    let cancel = Arc::new(AtomicBool::new(false));
    let reconfig = scenario.reconfig.clone().map(|spec| {
        let fire_at = scenario.duration.mul_f64(spec.at_frac);
        let cancel = Arc::clone(&cancel);
        thread::spawn(move || -> std::io::Result<bool> {
            let deadline = Instant::now() + fire_at;
            loop {
                if cancel.load(Ordering::Relaxed) {
                    return Ok(false);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                thread::sleep((deadline - now).min(Duration::from_millis(50)));
            }
            let deltas = spec.deltas.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
            let status =
                crate::client::put_config(addr, &format!("deltas={deltas}"), EXCHANGE_TIMEOUT)?;
            if status != 200 {
                return Err(std::io::Error::other(format!("PUT /config answered {status}")));
            }
            Ok(true)
        })
    });
    let stats = match &scenario.mode {
        LoadMode::Open { .. } => run_open(addr, scenario),
        LoadMode::Closed { sessions, mean_think } => {
            run_closed(addr, scenario, *sessions, *mean_think)
        }
    };
    cancel.store(true, Ordering::Relaxed);
    let reconfig_outcome = reconfig.map(|h| h.join().expect("reconfig thread panicked"));
    // The run's own failure is the primary diagnosis — a PUT that then
    // failed against the dead server must not mask it.
    let stats = stats?;
    if let Some(outcome) = reconfig_outcome {
        if !outcome? {
            return Err(std::io::Error::other(
                "run finished before the reconfig instant — the δ flip never fired",
            ));
        }
    }
    Ok(stats)
}

fn run_open(addr: SocketAddr, scenario: &Scenario) -> std::io::Result<GenStats> {
    let LoadMode::Open { arrival } = &scenario.mode else { unreachable!("checked by caller") };
    let n = scenario.deltas.len();
    let queue = Arc::new(JobQueue::default());
    let start = Instant::now();
    let warmup = scenario.warmup;

    // Connection workers: pace each job to its intended instant, then
    // measure from that instant (coordinated-omission corrected).
    let mut handles = Vec::with_capacity(scenario.connections);
    for _ in 0..scenario.connections {
        let queue = Arc::clone(&queue);
        handles.push(thread::spawn(move || -> (Vec<ClassCounters>, bool) {
            let mut counters = new_counters(n);
            let mut conn = match Connection::connect(addr, EXCHANGE_TIMEOUT) {
                Ok(c) => c,
                Err(_) => return (counters, true),
            };
            while let Some(job) = queue.pop() {
                // Compensated pacing (psd_server::timing): plain
                // `thread::sleep` overshoot would shift every intended
                // arrival late and shave the offered rate at exactly
                // the high-rate operating points under test.
                psd_server::timing::sleep_until(start + job.intended);
                let c = &mut counters[job.class];
                c.sent += 1;
                let outcome = conn.exchange(job.class, job.cost);
                let latency = start.elapsed().saturating_sub(job.intended);
                record(c, &outcome, latency, job.intended, warmup);
                if let Some(died) = settle_connection(&mut conn, addr, &outcome) {
                    return (counters, died);
                }
            }
            (counters, false)
        }));
    }

    // The schedule: generated a bounded lookahead ahead of wall-clock,
    // so queue memory stays O(lookahead·rate) however long the run is,
    // while workers always have jobs ready well before their intended
    // instants.
    const LOOKAHEAD: Duration = Duration::from_secs(5);
    let mut rng = Xoshiro256pp::seed_from(SplitMix64::derive(scenario.seed, 0));
    let mut process = arrival.build(scenario.duration);
    let horizon = scenario.duration.as_secs_f64();
    let weights_before: Vec<f64> = scenario.mix.iter().map(|m| m.weight).collect();
    let mut t = 0.0;
    loop {
        t += process.next_interarrival(&mut rng);
        if t >= horizon {
            break;
        }
        let intended = Duration::from_secs_f64(t);
        let now = start.elapsed();
        if intended > now + LOOKAHEAD {
            thread::sleep(intended - now - LOOKAHEAD);
        }
        let weights = match &scenario.mix_shift {
            Some((frac, after)) if t / horizon >= *frac => after.as_slice(),
            _ => weights_before.as_slice(),
        };
        let class = pick_class(weights, &mut rng);
        let cost = scenario.mix[class].cost.sample(&mut rng).max(MIN_COST);
        queue.push(Job { intended, class, cost });
    }
    queue.close();

    let mut classes = new_counters(n);
    let mut dead_workers = 0usize;
    for h in handles {
        let (counters, died) = h.join().expect("connection worker panicked");
        for (agg, c) in classes.iter_mut().zip(&counters) {
            agg.merge(c);
        }
        dead_workers += usize::from(died);
    }
    Ok(GenStats {
        classes,
        measured_s: (scenario.duration - scenario.warmup).as_secs_f64(),
        dead_workers,
    })
}

fn run_closed(
    addr: SocketAddr,
    scenario: &Scenario,
    sessions: usize,
    mean_think: Duration,
) -> std::io::Result<GenStats> {
    let n = scenario.deltas.len();
    let start = Instant::now();
    let duration = scenario.duration;
    let warmup = scenario.warmup;
    let think_s = mean_think.as_secs_f64();
    let horizon = duration.as_secs_f64();

    let mut handles = Vec::with_capacity(sessions);
    for session in 0..sessions {
        let mix = scenario.mix.clone();
        let mix_shift = scenario.mix_shift.clone();
        let seed = SplitMix64::derive(scenario.seed, session as u64 + 1);
        handles.push(thread::spawn(move || -> (Vec<ClassCounters>, bool) {
            let mut counters = new_counters(n);
            let mut rng = Xoshiro256pp::seed_from(seed);
            let mut conn = match Connection::connect(addr, EXCHANGE_TIMEOUT) {
                Ok(c) => c,
                Err(_) => return (counters, true),
            };
            let weights_before: Vec<f64> = mix.iter().map(|m| m.weight).collect();
            loop {
                // Think, then issue the next request of this session.
                if think_s > 0.0 {
                    let gap = -rng.next_open_f64().ln() * think_s;
                    thread::sleep(Duration::from_secs_f64(gap));
                }
                let elapsed = start.elapsed();
                if elapsed >= duration {
                    return (counters, false);
                }
                let weights = match &mix_shift {
                    Some((frac, after)) if elapsed.as_secs_f64() / horizon >= *frac => {
                        after.as_slice()
                    }
                    _ => weights_before.as_slice(),
                };
                let class = pick_class(weights, &mut rng);
                let cost = mix[class].cost.sample(&mut rng).max(MIN_COST);
                let c = &mut counters[class];
                c.sent += 1;
                let sent_at = Instant::now();
                let outcome = conn.exchange(class, cost);
                let latency = sent_at.elapsed();
                record(c, &outcome, latency, elapsed, warmup);
                if let Some(died) = settle_connection(&mut conn, addr, &outcome) {
                    return (counters, died);
                }
            }
        }));
    }

    let mut classes = new_counters(n);
    let mut dead_workers = 0usize;
    for h in handles {
        let (counters, died) = h.join().expect("session worker panicked");
        for (agg, c) in classes.iter_mut().zip(&counters) {
            agg.merge(c);
        }
        dead_workers += usize::from(died);
    }
    Ok(GenStats { classes, measured_s: (duration - warmup).as_secs_f64(), dead_workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_class_follows_weights() {
        let mut rng = Xoshiro256pp::seed_from(9);
        let weights = [3.0, 1.0];
        let mut counts = [0u64; 2];
        for _ in 0..40_000 {
            counts[pick_class(&weights, &mut rng)] += 1;
        }
        let frac = counts[0] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "class-0 share {frac}");
    }

    #[test]
    fn pick_class_zero_weight_never_chosen() {
        let mut rng = Xoshiro256pp::seed_from(1);
        for _ in 0..5_000 {
            assert_eq!(pick_class(&[0.0, 1.0], &mut rng), 1);
        }
    }

    #[test]
    fn job_queue_drains_in_fifo_order_then_ends() {
        let q = JobQueue::default();
        for i in 0..5 {
            q.push(Job { intended: Duration::from_millis(i), class: 0, cost: 1.0 });
        }
        q.close();
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().intended, Duration::from_millis(i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn counters_merge_adds_everything() {
        let mut a = ClassCounters { sent: 2, ok: 2, errors: 0, ..Default::default() };
        a.latency_us.record(100);
        a.slowdown.push(1.0);
        let mut b = ClassCounters { sent: 3, ok: 2, errors: 1, ..Default::default() };
        b.latency_us.record(300);
        b.slowdown.push(3.0);
        a.merge(&b);
        assert_eq!(a.sent, 5);
        assert_eq!(a.ok, 4);
        assert_eq!(a.errors, 1);
        assert_eq!(a.latency_us.count(), 2);
        assert_eq!(a.slowdown.count(), 2);
        assert!((a.slowdown.mean() - 2.0).abs() < 1e-12);
    }
}
