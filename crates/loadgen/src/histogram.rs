//! Log-bucketed latency histogram (HDR-style): constant-time record,
//! bounded relative error, mergeable across worker threads.
//!
//! Values are recorded as non-negative integers (the generator uses
//! microseconds). Buckets are exact below [`SUB_BUCKETS`] and then
//! split each power-of-two range into [`SUB_BUCKETS`] linear
//! sub-buckets, so any recorded value is reconstructed to within
//! `1/SUB_BUCKETS` (≈3%) relative error — plenty for p50/p99/p999
//! latency reporting, at ~15 KiB per histogram.
//!
//! The concurrency story is deliberately share-nothing: each connection
//! worker owns a private `LogHistogram` and the harness folds them with
//! [`LogHistogram::merge`] after the run, so the hot record path is a
//! plain array increment — no atomics, no locks, no false sharing.

/// Linear sub-buckets per power-of-two range (and the width of the
/// exact low range). Must be a power of two.
pub const SUB_BUCKETS: u64 = 32;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count: the exact range plus [`SUB_BUCKETS`] sub-buckets
/// for each of the 59 octaves of `u64` above it (msb 5 through 63).
const N_BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// A mergeable log-bucketed histogram of `u64` observations.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

/// Bucket index of `v`: identity below [`SUB_BUCKETS`], then
/// `SUB_BUCKETS` linear sub-buckets per octave.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    // Top SUB_BITS+1 bits of v, in [SUB_BUCKETS, 2*SUB_BUCKETS).
    let top = (v >> shift) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize + top - SUB_BUCKETS as usize
}

/// Midpoint of bucket `i`'s value range (exact in the low range).
#[inline]
fn value_of(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let octave = i / SUB_BUCKETS - 1; // 0-based octave above the exact range
    let sub = i % SUB_BUCKETS;
    let low = (SUB_BUCKETS + sub) << octave;
    let width = 1u64 << octave;
    low + width / 2
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`: the smallest bucket midpoint `v`
    /// such that at least `q·count` observations are ≤ its bucket.
    /// `None` when empty. Accurate to the bucket's ≈3% relative width,
    /// and clamped into `[min, max]` so tails stay honest.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(value_of(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold `other` into `self` (element-wise; order-independent).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_in_low_range() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        assert_eq!(h.value_at_quantile(0.0), Some(0));
        assert_eq!(h.value_at_quantile(1.0), Some(SUB_BUCKETS - 1));
    }

    #[test]
    fn index_is_monotone_and_continuous() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = index_of(v);
            assert!(i == prev || i == prev + 1, "index jumps at {v}: {prev} -> {i}");
            prev = i;
        }
        // Spot-check the octave boundaries.
        assert_eq!(index_of(31), 31);
        assert_eq!(index_of(32), 32);
        assert_eq!(index_of(63), 63);
        assert_eq!(index_of(64), 64);
        assert_eq!(index_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn reconstruction_within_relative_error() {
        for v in [1u64, 31, 32, 100, 999, 12_345, 1_000_000, 123_456_789] {
            let mid = value_of(index_of(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-12, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn quantiles_track_a_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0), (0.999, 9_990.0)] {
            let got = h.value_at_quantile(q).unwrap() as f64;
            assert!((got - want).abs() / want < 0.05, "q={q}: got {got}, want {want}");
        }
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let vals: Vec<u64> = (0..5_000).map(|i| (i * i) % 100_000 + 1).collect();
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in vals.iter().enumerate() {
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must equal recording everything in one histogram");
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), None);
    }
}
