//! A lock-free log-bucket latency histogram: powers-of-two microsecond
//! buckets, relaxed atomic increments, snapshot on scrape. Bucket `b`
//! holds observations with exactly `b` significant bits of microseconds
//! (`[2^(b-1), 2^b) µs`), so the Prometheus upper bound of bucket `b`
//! is `2^b µs` and cumulative counts are monotone by construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: `2^27 µs ≈ 134 s` before the `+Inf` overflow
/// bucket — far beyond any request this stack serves.
pub const HIST_BUCKETS: usize = 28;

/// A fixed-shape atomic histogram; `observe_ns` is wait-free.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one observation, in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let us = ns / 1_000;
        let idx = ((u64::BITS - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy (buckets are read relaxed; the totals may
    /// trail concurrent writers by a few observations, which scrapes
    /// tolerate).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }
}

/// The scrape-side view of a [`LogHistogram`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_seconds: f64,
}

impl HistSnapshot {
    /// The inclusive upper bound of bucket `i` in seconds (`+Inf` for
    /// the last bucket), i.e. the Prometheus `le` label value.
    pub fn upper_bound_seconds(&self, i: usize) -> f64 {
        if i + 1 >= self.counts.len() {
            f64::INFINITY
        } else {
            (1u64 << i) as f64 * 1e-6
        }
    }

    /// Cumulative counts, bucket by bucket (what `_bucket` samples
    /// carry on the wire).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                total += c;
                total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced_and_cumulative_counts_monotone() {
        let h = LogHistogram::new();
        h.observe_ns(0); // bucket 0 (sub-microsecond)
        h.observe_ns(1_500); // 1 µs  -> bucket 1 (≤ 2 µs)
        h.observe_ns(1_000_000); // 1 ms  -> bucket 10 (≤ 1024 µs)
        h.observe_ns(u64::MAX / 2); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[10], 1);
        assert_eq!(s.counts[HIST_BUCKETS - 1], 1);
        let cum = s.cumulative();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "cumulative must be monotone");
        assert_eq!(*cum.last().unwrap(), 4);
        assert!(s.upper_bound_seconds(HIST_BUCKETS - 1).is_infinite());
        assert!((s.upper_bound_seconds(10) - 1024e-6).abs() < 1e-12);
    }
}
