//! Relaxed-atomic counters for internals that were previously
//! invisible: timer-wheel cascade/fire activity, per-shard reactor
//! loop behaviour, and admission draws vs sheds. The hot paths bump
//! plain `AtomicU64`s (wait-free, no allocation); scrapes read them
//! relaxed — each counter is independently consistent, which is all an
//! exposition needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Timer-wheel activity counters (occupancy is the executor's
/// in-flight count, reported alongside by the host).
#[derive(Debug, Default)]
pub struct WheelStats {
    /// Timer-thread wakeups (alarm fires and ticks with work).
    pub wakeups: AtomicU64,
    /// Virtual-finish deadlines fired.
    pub fires: AtomicU64,
    /// Entries re-homed from an outer wheel level into a finer one.
    pub cascades: AtomicU64,
    /// Deadlines scheduled (including service-start reschedules).
    pub scheduled: AtomicU64,
}

/// One reactor shard's event-loop counters.
#[derive(Debug, Default)]
pub struct ReactorShardStats {
    /// Poller returns (one per loop iteration).
    pub wakeups: AtomicU64,
    /// Readiness events delivered across all wakeups.
    pub events: AtomicU64,
    /// Connections accepted on this shard.
    pub accepts: AtomicU64,
    /// Executor completions drained from the mailbox.
    pub completions: AtomicU64,
    /// Sum of mailbox batch sizes (mean depth = sum / drains).
    pub mailbox_sum: AtomicU64,
    /// Largest single mailbox drain observed.
    pub mailbox_peak: AtomicU64,
    /// Non-empty mailbox drains.
    pub mailbox_drains: AtomicU64,
    /// Idle sweeps executed.
    pub sweeps: AtomicU64,
    /// Connections retired by idle sweeps.
    pub swept: AtomicU64,
}

impl ReactorShardStats {
    /// Record one mailbox drain of `n` completions.
    pub fn record_drain(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.completions.fetch_add(n, Ordering::Relaxed);
        self.mailbox_sum.fetch_add(n, Ordering::Relaxed);
        self.mailbox_drains.fetch_add(1, Ordering::Relaxed);
        self.mailbox_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// A point-in-time copy for exposition.
    pub fn snapshot(&self) -> ReactorShardSnapshot {
        ReactorShardSnapshot {
            wakeups: self.wakeups.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            mailbox_sum: self.mailbox_sum.load(Ordering::Relaxed),
            mailbox_peak: self.mailbox_peak.load(Ordering::Relaxed),
            mailbox_drains: self.mailbox_drains.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            swept: self.swept.load(Ordering::Relaxed),
        }
    }
}

/// The scrape-side view of one shard's loop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReactorShardSnapshot {
    /// Poller returns.
    pub wakeups: u64,
    /// Readiness events delivered.
    pub events: u64,
    /// Connections accepted.
    pub accepts: u64,
    /// Completions drained.
    pub completions: u64,
    /// Sum of drain batch sizes.
    pub mailbox_sum: u64,
    /// Largest drain batch.
    pub mailbox_peak: u64,
    /// Non-empty drains.
    pub mailbox_drains: u64,
    /// Idle sweeps.
    pub sweeps: u64,
    /// Connections swept.
    pub swept: u64,
}

impl ReactorShardSnapshot {
    /// Mean readiness events delivered per poller wakeup.
    pub fn events_per_wakeup(&self) -> f64 {
        ratio(self.events, self.wakeups)
    }

    /// Mean completions per non-empty mailbox drain.
    pub fn mean_mailbox_depth(&self) -> f64 {
        ratio(self.mailbox_sum, self.mailbox_drains)
    }

    /// Mean connections retired per idle sweep.
    pub fn mean_sweep_size(&self) -> f64 {
        ratio(self.swept, self.sweeps)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One io_uring shard's ring counters, published by the uring engine's
/// event loop (it copies the ring's single-threaded meters into these
/// atomics once per loop iteration — stores, not read-modify-writes).
#[derive(Debug, Default)]
pub struct UringStats {
    /// `io_uring_enter` syscalls issued.
    pub enters: AtomicU64,
    /// Enter calls that waited for a completion.
    pub waits: AtomicU64,
    /// SQEs submitted across all enters.
    pub sqes: AtomicU64,
    /// CQEs reaped.
    pub cqes: AtomicU64,
    /// Reads served via `READ_FIXED` (registered buffers).
    pub fixed_reads: AtomicU64,
    /// Writes served via `WRITE_FIXED` (registered buffers).
    pub fixed_writes: AtomicU64,
    /// Reads/writes that fell back to plain opcodes (overflow slots or
    /// registration refused).
    pub plain_ops: AtomicU64,
}

impl UringStats {
    /// A point-in-time copy for exposition.
    pub fn snapshot(&self) -> UringSnapshot {
        UringSnapshot {
            enters: self.enters.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            sqes: self.sqes.load(Ordering::Relaxed),
            cqes: self.cqes.load(Ordering::Relaxed),
            fixed_reads: self.fixed_reads.load(Ordering::Relaxed),
            fixed_writes: self.fixed_writes.load(Ordering::Relaxed),
            plain_ops: self.plain_ops.load(Ordering::Relaxed),
        }
    }
}

/// The scrape-side view of one uring shard's ring counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UringSnapshot {
    /// `io_uring_enter` calls.
    pub enters: u64,
    /// Waiting enters.
    pub waits: u64,
    /// SQEs submitted.
    pub sqes: u64,
    /// CQEs reaped.
    pub cqes: u64,
    /// Fixed-buffer reads.
    pub fixed_reads: u64,
    /// Fixed-buffer writes.
    pub fixed_writes: u64,
    /// Plain-opcode reads/writes.
    pub plain_ops: u64,
}

impl UringSnapshot {
    /// Mean SQEs batched into one `io_uring_enter` — the batching win
    /// over epoll's one-syscall-per-op pattern.
    pub fn sqes_per_enter(&self) -> f64 {
        ratio(self.sqes, self.enters)
    }

    /// Mean CQEs reaped per waiting enter.
    pub fn cqes_per_wait(&self) -> f64 {
        ratio(self.cqes, self.waits)
    }

    /// Fraction of reads/writes that used registered buffers.
    pub fn fixed_hit_ratio(&self) -> f64 {
        let fixed = self.fixed_reads + self.fixed_writes;
        ratio(fixed, fixed + self.plain_ops)
    }
}

/// Admission-control door counters.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Admission decisions drawn (one per class-request arrival).
    pub draws: AtomicU64,
    /// Requests turned away by the draw.
    pub sheds: AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_accounting_tracks_peak_and_mean() {
        let s = ReactorShardStats::default();
        s.record_drain(0); // empty drains are not drains
        s.record_drain(3);
        s.record_drain(1);
        s.wakeups.fetch_add(2, Ordering::Relaxed);
        s.events.fetch_add(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.completions, 4);
        assert_eq!(snap.mailbox_peak, 3);
        assert_eq!(snap.mailbox_drains, 2);
        assert!((snap.mean_mailbox_depth() - 2.0).abs() < 1e-12);
        assert!((snap.events_per_wakeup() - 2.5).abs() < 1e-12);
        assert_eq!(ReactorShardSnapshot::default().mean_sweep_size(), 0.0);
    }

    #[test]
    fn uring_snapshot_ratios() {
        let s = UringStats::default();
        s.enters.store(4, Ordering::Relaxed);
        s.waits.store(2, Ordering::Relaxed);
        s.sqes.store(12, Ordering::Relaxed);
        s.cqes.store(10, Ordering::Relaxed);
        s.fixed_reads.store(6, Ordering::Relaxed);
        s.fixed_writes.store(3, Ordering::Relaxed);
        s.plain_ops.store(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert!((snap.sqes_per_enter() - 3.0).abs() < 1e-12);
        assert!((snap.cqes_per_wait() - 5.0).abs() < 1e-12);
        assert!((snap.fixed_hit_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(UringSnapshot::default().sqes_per_enter(), 0.0);
    }
}
