//! Relaxed-atomic counters for internals that were previously
//! invisible: timer-wheel cascade/fire activity, per-shard reactor
//! loop behaviour, and admission draws vs sheds. The hot paths bump
//! plain `AtomicU64`s (wait-free, no allocation); scrapes read them
//! relaxed — each counter is independently consistent, which is all an
//! exposition needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Timer-wheel activity counters (occupancy is the executor's
/// in-flight count, reported alongside by the host).
#[derive(Debug, Default)]
pub struct WheelStats {
    /// Timer-thread wakeups (alarm fires and ticks with work).
    pub wakeups: AtomicU64,
    /// Virtual-finish deadlines fired.
    pub fires: AtomicU64,
    /// Entries re-homed from an outer wheel level into a finer one.
    pub cascades: AtomicU64,
    /// Deadlines scheduled (including service-start reschedules).
    pub scheduled: AtomicU64,
}

/// One reactor shard's event-loop counters.
#[derive(Debug, Default)]
pub struct ReactorShardStats {
    /// Poller returns (one per loop iteration).
    pub wakeups: AtomicU64,
    /// Readiness events delivered across all wakeups.
    pub events: AtomicU64,
    /// Connections accepted on this shard.
    pub accepts: AtomicU64,
    /// Executor completions drained from the mailbox.
    pub completions: AtomicU64,
    /// Sum of mailbox batch sizes (mean depth = sum / drains).
    pub mailbox_sum: AtomicU64,
    /// Largest single mailbox drain observed.
    pub mailbox_peak: AtomicU64,
    /// Non-empty mailbox drains.
    pub mailbox_drains: AtomicU64,
    /// Idle sweeps executed.
    pub sweeps: AtomicU64,
    /// Connections retired by idle sweeps.
    pub swept: AtomicU64,
}

impl ReactorShardStats {
    /// Record one mailbox drain of `n` completions.
    pub fn record_drain(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.completions.fetch_add(n, Ordering::Relaxed);
        self.mailbox_sum.fetch_add(n, Ordering::Relaxed);
        self.mailbox_drains.fetch_add(1, Ordering::Relaxed);
        self.mailbox_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// A point-in-time copy for exposition.
    pub fn snapshot(&self) -> ReactorShardSnapshot {
        ReactorShardSnapshot {
            wakeups: self.wakeups.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            mailbox_sum: self.mailbox_sum.load(Ordering::Relaxed),
            mailbox_peak: self.mailbox_peak.load(Ordering::Relaxed),
            mailbox_drains: self.mailbox_drains.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            swept: self.swept.load(Ordering::Relaxed),
        }
    }
}

/// The scrape-side view of one shard's loop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReactorShardSnapshot {
    /// Poller returns.
    pub wakeups: u64,
    /// Readiness events delivered.
    pub events: u64,
    /// Connections accepted.
    pub accepts: u64,
    /// Completions drained.
    pub completions: u64,
    /// Sum of drain batch sizes.
    pub mailbox_sum: u64,
    /// Largest drain batch.
    pub mailbox_peak: u64,
    /// Non-empty drains.
    pub mailbox_drains: u64,
    /// Idle sweeps.
    pub sweeps: u64,
    /// Connections swept.
    pub swept: u64,
}

impl ReactorShardSnapshot {
    /// Mean readiness events delivered per poller wakeup.
    pub fn events_per_wakeup(&self) -> f64 {
        ratio(self.events, self.wakeups)
    }

    /// Mean completions per non-empty mailbox drain.
    pub fn mean_mailbox_depth(&self) -> f64 {
        ratio(self.mailbox_sum, self.mailbox_drains)
    }

    /// Mean connections retired per idle sweep.
    pub fn mean_sweep_size(&self) -> f64 {
        ratio(self.swept, self.sweeps)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Admission-control door counters.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Admission decisions drawn (one per class-request arrival).
    pub draws: AtomicU64,
    /// Requests turned away by the draw.
    pub sheds: AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_accounting_tracks_peak_and_mean() {
        let s = ReactorShardStats::default();
        s.record_drain(0); // empty drains are not drains
        s.record_drain(3);
        s.record_drain(1);
        s.wakeups.fetch_add(2, Ordering::Relaxed);
        s.events.fetch_add(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.completions, 4);
        assert_eq!(snap.mailbox_peak, 3);
        assert_eq!(snap.mailbox_drains, 2);
        assert!((snap.mean_mailbox_depth() - 2.0).abs() < 1e-12);
        assert!((snap.events_per_wakeup() - 2.5).abs() < 1e-12);
        assert_eq!(ReactorShardSnapshot::default().mean_sweep_size(), 0.0);
    }
}
