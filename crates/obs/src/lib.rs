//! # psd-obs — observability for the PSD stack
//!
//! The telemetry layer every runtime crate threads through: the live
//! server (`psd-server`), the discrete-event simulator (`psd-desim`)
//! and the load generator (`psd-loadgen`). Dependency-free apart from
//! the control-plane contract (`psd-control`), which it needs so a
//! flight-recorder trace can embed the exact observation/directive
//! types both hosts speak.
//!
//! Three coordinated pieces:
//!
//! 1. **Request lifecycle tracing** ([`span`]) — a sharded
//!    fixed-capacity ring of compact `Copy` span records, written from
//!    the frontends' hot paths with zero per-request heap allocation,
//!    thinned by a per-request sampling draw, and rendered as JSON
//!    with a per-stage slowdown decomposition (queueing vs stretch vs
//!    service vs write-back).
//! 2. **Prometheus text exposition** ([`prom`], [`hist`], [`stats`]) —
//!    a hand-rolled 0.0.4 writer (HELP/TYPE, label escaping,
//!    log-bucket histograms with cumulative `le` buckets) plus the
//!    relaxed-atomic internals counters it publishes: timer-wheel
//!    cascades, reactor loop stats, admission draws vs sheds.
//! 3. **Control-decision flight recorder** ([`flight`]) — a bounded
//!    ring of `ControlTrace { observation, directive, internals }`
//!    records shared by the server monitor and the desim engine,
//!    JSON-serializable both ways so a live trace replays through the
//!    simulator's controller and diffs ([`flight::replay`]).
//!
//! ```
//! use psd_obs::{ObsBundle, ObsConfig, SpanRecord};
//!
//! let obs = ObsBundle::new(2, ObsConfig::default());
//! obs.spans.record(0, SpanRecord {
//!     class: 1,
//!     admitted: true,
//!     cost: 1.0,
//!     queue_ns: 250_000,
//!     service_ns: 2_000_000,
//!     nominal_ns: 1_000_000,
//!     writeback_ns: 10_000,
//!     ..SpanRecord::default()
//! });
//! obs.observe_latency_ns(1, 2_260_000);
//! let spans = obs.spans.recent(16);
//! assert_eq!(spans.len(), 1);
//! assert!((spans[0].slowdown().unwrap() - 2.26).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod prom;
pub mod span;
pub mod stats;

pub use flight::{
    max_divergence, parse_traces, replay, traces_to_json, ControlTrace, FlightRecorder, ReplayDiff,
};
pub use hist::{HistSnapshot, LogHistogram, HIST_BUCKETS};
pub use json::JsonValue;
pub use prom::{parse_text as parse_prometheus, PromSample, PromWriter};
pub use span::{decompose, spans_to_json, SpanRecord, SpanRing, StageBreakdown};
pub use stats::{
    AdmissionStats, ReactorShardSnapshot, ReactorShardStats, UringSnapshot, UringStats, WheelStats,
};

/// Sizing knobs for an [`ObsBundle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Writer shards in the span ring (frontend writers map onto these
    /// round-robin, so ≥ the expected writer count avoids contention).
    pub span_shards: usize,
    /// Total span slots across all shards.
    pub span_capacity: usize,
    /// Per-request sampling probability in `[0, 1]`; `0` disables the
    /// span ring entirely (counters and the flight recorder stay on).
    pub sample: f64,
    /// Control windows retained by the flight recorder.
    pub flight_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self { span_shards: 8, span_capacity: 4096, sample: 1.0, flight_capacity: 256 }
    }
}

/// Everything a host wires through its stack: the span ring, the
/// flight recorder, admission door counters, and per-class latency
/// histograms.
#[derive(Debug)]
pub struct ObsBundle {
    /// Request lifecycle spans.
    pub spans: SpanRing,
    /// Control-decision records.
    pub flight: FlightRecorder,
    /// Admission draws vs sheds.
    pub admission: AdmissionStats,
    /// Per-class end-to-end latency histograms (index = class).
    pub latency: Vec<LogHistogram>,
}

impl ObsBundle {
    /// A bundle for `n_classes` service classes.
    pub fn new(n_classes: usize, cfg: ObsConfig) -> Self {
        Self {
            spans: SpanRing::new(cfg.span_shards, cfg.span_capacity, cfg.sample),
            flight: FlightRecorder::new(cfg.flight_capacity),
            admission: AdmissionStats::default(),
            latency: (0..n_classes.max(1)).map(|_| LogHistogram::new()).collect(),
        }
    }

    /// Record one completed request's end-to-end latency (class
    /// indices beyond the configured count land in the last
    /// histogram).
    pub fn observe_latency_ns(&self, class: usize, ns: u64) {
        let idx = class.min(self.latency.len() - 1);
        self.latency[idx].observe_ns(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_wires_all_pieces() {
        let obs = ObsBundle::new(2, ObsConfig { sample: 1.0, ..ObsConfig::default() });
        assert!(obs.spans.record(3, SpanRecord { admitted: true, ..SpanRecord::default() }));
        obs.observe_latency_ns(0, 1_000);
        obs.observe_latency_ns(99, 2_000); // clamps to the last class
        assert_eq!(obs.latency[0].snapshot().count, 1);
        assert_eq!(obs.latency[1].snapshot().count, 1);
        assert_eq!(obs.admission.draws.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(obs.flight.recorded(), 0);
    }
}
