//! Request lifecycle tracing: compact plain-old-data span records in a
//! sharded fixed-capacity ring. Each frontend writer owns (by
//! convention) one shard, so the per-record `Mutex` lock is an
//! uncontended compare-and-swap; slots are pre-allocated at
//! construction, so recording a span performs **zero heap
//! allocation** — the property the server's `reactor_alloc` gate
//! enforces end to end.
//!
//! One record summarizes the whole accept → parse → classify →
//! admit/shed → enqueue → dispatch → finish → respond lifecycle as the
//! per-stage slowdown decomposition the paper's metric calls for:
//! queueing wait, ideal service, stretch (rate-partitioned dilation
//! beyond ideal), and write-back (completion hand-off + response
//! write).

use crate::json::push_json_f64;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One sampled request, fully described by values every frontend
/// already holds at respond time — fixed size, `Copy`, no heap.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanRecord {
    /// Global sequence number (assigned by the ring; later = newer).
    pub seq: u64,
    /// Request class (0-based).
    pub class: u32,
    /// Writer shard (reactor shard index or handler-thread slot).
    pub shard: u32,
    /// `false` when admission control shed the request at the door; all
    /// stage fields are zero for shed spans.
    pub admitted: bool,
    /// Declared request cost (work units).
    pub cost: f64,
    /// Enqueue → dispatch wait.
    pub queue_ns: u64,
    /// Dispatch → finish (actual, stretched, service time).
    pub service_ns: u64,
    /// Ideal full-rate service time (`cost × work_unit`).
    pub nominal_ns: u64,
    /// Finish → response-write hand-off (mailbox / channel latency).
    pub writeback_ns: u64,
}

impl SpanRecord {
    /// End-to-end residence time.
    pub fn total_ns(&self) -> u64 {
        self.queue_ns + self.service_ns + self.writeback_ns
    }

    /// Dilation beyond the ideal service time — the share-stretch
    /// component of the decomposition.
    pub fn stretch_ns(&self) -> u64 {
        self.service_ns.saturating_sub(self.nominal_ns)
    }

    /// The ideal-service component (actual service capped at nominal,
    /// so `queue + ideal + stretch + writeback == total`).
    pub fn ideal_service_ns(&self) -> u64 {
        self.service_ns.min(self.nominal_ns)
    }

    /// The paper's slowdown metric for this request: residence time
    /// over ideal full-rate service time. `None` for shed spans or a
    /// zero nominal.
    pub fn slowdown(&self) -> Option<f64> {
        (self.admitted && self.nominal_ns > 0)
            .then(|| self.total_ns() as f64 / self.nominal_ns as f64)
    }

    /// Append this span as a JSON object with the per-stage slowdown
    /// decomposition (all times in microseconds).
    pub fn push_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\":{},\"class\":{},\"shard\":{},\"admitted\":{}",
            self.seq, self.class, self.shard, self.admitted
        );
        out.push_str(",\"cost\":");
        push_json_f64(out, self.cost);
        let us = |ns: u64| ns as f64 * 1e-3;
        for (key, val) in [
            ("queue_us", us(self.queue_ns)),
            ("service_us", us(self.ideal_service_ns())),
            ("stretch_us", us(self.stretch_ns())),
            ("writeback_us", us(self.writeback_ns)),
            ("total_us", us(self.total_ns())),
        ] {
            let _ = write!(out, ",\"{key}\":");
            push_json_f64(out, val);
        }
        out.push_str(",\"slowdown\":");
        match self.slowdown() {
            Some(s) => push_json_f64(out, s),
            None => out.push_str("null"),
        }
        out.push('}');
    }
}

struct RingShard {
    slots: Vec<SpanRecord>,
    next: usize,
    filled: usize,
    rng: u64,
}

/// The sharded fixed-capacity span ring. `record` is the only hot-path
/// entry point; everything else is scrape-side.
pub struct SpanRing {
    shards: Vec<Mutex<RingShard>>,
    seq: AtomicU64,
    /// Per-draw acceptance threshold out of 2³² (0 disables tracing).
    sample_threshold: u64,
    sample: f64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("shards", &self.shards.len())
            .field("sample", &self.sample)
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl SpanRing {
    /// A ring with `total_capacity` slots spread over `shards` shards,
    /// sampling each request with probability `sample` (clamped to
    /// `[0, 1]`). All slots are allocated here, never afterwards.
    pub fn new(shards: usize, total_capacity: usize, sample: f64) -> Self {
        let shards = shards.max(1);
        let per_shard = (total_capacity / shards).max(1);
        let sample = sample.clamp(0.0, 1.0);
        Self {
            shards: (0..shards)
                .map(|i| {
                    Mutex::new(RingShard {
                        slots: vec![SpanRecord::default(); per_shard],
                        next: 0,
                        filled: 0,
                        // Distinct odd seeds per shard.
                        rng: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(2 * i as u64 + 1),
                    })
                })
                .collect(),
            seq: AtomicU64::new(0),
            sample_threshold: (sample * 4_294_967_296.0) as u64,
            sample,
        }
    }

    /// The configured sampling probability.
    pub fn sample_rate(&self) -> f64 {
        self.sample
    }

    /// Spans recorded (post-sampling) since start.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Total slots across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| lock(s).slots.len()).sum()
    }

    /// Offer one span from `shard` (wrapped modulo the shard count).
    /// Applies the sampling draw, assigns the sequence number, and
    /// overwrites the oldest slot when full. Returns whether the span
    /// was kept. Allocation-free.
    pub fn record(&self, shard: usize, mut rec: SpanRecord) -> bool {
        if self.sample_threshold == 0 {
            return false;
        }
        let mut g = lock(&self.shards[shard % self.shards.len()]);
        if self.sample_threshold < 1 << 32 {
            // xorshift64* — cheap, per-shard state, no global contention.
            let mut x = g.rng;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            g.rng = x;
            if x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32 >= self.sample_threshold {
                return false;
            }
        }
        rec.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at = g.next;
        let cap = g.slots.len();
        g.slots[at] = rec;
        g.next = (at + 1) % cap;
        g.filled = (g.filled + 1).min(cap);
        true
    }

    /// The most recent `max` spans across all shards, oldest first.
    pub fn recent(&self, max: usize) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            let g = lock(shard);
            all.extend_from_slice(&g.slots[..g.filled]);
        }
        all.sort_by_key(|r| r.seq);
        if all.len() > max {
            all.drain(..all.len() - max);
        }
        all
    }
}

fn lock(m: &Mutex<RingShard>) -> std::sync::MutexGuard<'_, RingShard> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-class sums of the four decomposition stages over a span set —
/// the aggregate view `GET /trace` serves alongside the raw spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    /// Spans aggregated (admitted only).
    pub count: u64,
    /// Shed spans seen for this class.
    pub shed: u64,
    /// Sum of queueing waits (ns).
    pub queue_ns: u64,
    /// Sum of ideal service (ns).
    pub service_ns: u64,
    /// Sum of stretch (ns).
    pub stretch_ns: u64,
    /// Sum of write-back (ns).
    pub writeback_ns: u64,
}

/// Aggregate `spans` into per-class stage sums (`n_classes` rows; spans
/// for classes beyond that are counted into the last row).
pub fn decompose(spans: &[SpanRecord], n_classes: usize) -> Vec<StageBreakdown> {
    let n = n_classes.max(1);
    let mut rows = vec![StageBreakdown::default(); n];
    for s in spans {
        let row = &mut rows[(s.class as usize).min(n - 1)];
        if !s.admitted {
            row.shed += 1;
            continue;
        }
        row.count += 1;
        row.queue_ns += s.queue_ns;
        row.service_ns += s.ideal_service_ns();
        row.stretch_ns += s.stretch_ns();
        row.writeback_ns += s.writeback_ns;
    }
    rows
}

/// Render a `GET /trace` response body: ring configuration, the
/// per-class decomposition, and the raw spans (oldest first).
pub fn spans_to_json(spans: &[SpanRecord], n_classes: usize, sample: f64, recorded: u64) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"sample\":");
    push_json_f64(&mut out, sample);
    let _ = write!(out, ",\"recorded\":{recorded},\"count\":{}", spans.len());
    out.push_str(",\"decomposition\":[");
    for (class, row) in decompose(spans, n_classes).iter().enumerate() {
        if class > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"class\":{class},\"count\":{},\"shed\":{}", row.count, row.shed);
        let mean_us = |sum_ns: u64| {
            if row.count == 0 {
                0.0
            } else {
                sum_ns as f64 * 1e-3 / row.count as f64
            }
        };
        for (key, val) in [
            ("queue_us", mean_us(row.queue_ns)),
            ("service_us", mean_us(row.service_ns)),
            ("stretch_us", mean_us(row.stretch_ns)),
            ("writeback_us", mean_us(row.writeback_ns)),
        ] {
            let _ = write!(out, ",\"mean_{key}\":");
            push_json_f64(&mut out, val);
        }
        out.push('}');
    }
    out.push_str("],\"spans\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        s.push_json(&mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn span(class: u32, queue: u64, service: u64, nominal: u64, writeback: u64) -> SpanRecord {
        SpanRecord {
            seq: 0,
            class,
            shard: 0,
            admitted: true,
            cost: 1.0,
            queue_ns: queue,
            service_ns: service,
            nominal_ns: nominal,
            writeback_ns: writeback,
        }
    }

    #[test]
    fn decomposition_components_sum_to_total() {
        let s = span(0, 400, 1_000, 600, 50);
        assert_eq!(
            s.queue_ns + s.ideal_service_ns() + s.stretch_ns() + s.writeback_ns,
            s.total_ns()
        );
        assert_eq!(s.stretch_ns(), 400);
        assert!((s.slowdown().unwrap() - 1_450.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn ring_keeps_the_most_recent_spans_in_seq_order() {
        let ring = SpanRing::new(2, 8, 1.0);
        for i in 0..20 {
            assert!(ring.record(i % 2, span(0, i as u64, 0, 0, 0)));
        }
        let recent = ring.recent(100);
        assert_eq!(recent.len(), 8, "capacity bounds retention");
        assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq), "oldest first");
        assert_eq!(ring.recorded(), 20);
        let newest = recent.last().unwrap().seq;
        assert_eq!(newest, 19, "latest span retained");
        assert_eq!(ring.recent(3).len(), 3, "max truncates from the old end");
    }

    #[test]
    fn sampling_zero_disables_and_half_thins() {
        let off = SpanRing::new(1, 8, 0.0);
        assert!(!off.record(0, span(0, 0, 0, 0, 0)));
        assert_eq!(off.recorded(), 0);

        let half = SpanRing::new(1, 4096, 0.5);
        let mut kept = 0;
        for _ in 0..4000 {
            if half.record(0, span(0, 0, 0, 0, 0)) {
                kept += 1;
            }
        }
        assert!((1500..=2500).contains(&kept), "p=0.5 kept {kept} of 4000");
    }

    #[test]
    fn trace_json_parses_and_aggregates_per_class() {
        let spans = vec![
            span(0, 100, 1_000, 800, 10),
            span(1, 300, 2_000, 1_000, 20),
            SpanRecord { class: 1, admitted: false, ..SpanRecord::default() },
        ];
        let text = spans_to_json(&spans, 2, 1.0, 3);
        let v = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(v.get("count").unwrap().as_u64(), Some(3));
        let rows = v.get("decomposition").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("shed").unwrap().as_u64(), Some(1));
        assert_eq!(rows[1].get("count").unwrap().as_u64(), Some(1));
        let stretch = rows[1].get("mean_stretch_us").unwrap().as_f64().unwrap();
        assert!((stretch - 1.0).abs() < 1e-9, "1000 ns stretch = 1 µs, got {stretch}");
        assert_eq!(v.get("spans").unwrap().as_array().unwrap().len(), 3);
    }
}
