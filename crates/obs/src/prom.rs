//! Prometheus text exposition (format 0.0.4), hand-rolled: `# HELP` /
//! `# TYPE` headers, label escaping, cumulative histogram buckets with
//! `+Inf`, and a small parser for the same subset so tests (and the
//! load generator's scrape check) can round-trip what the server emits.

use crate::hist::HistSnapshot;
use std::fmt::Write as _;

/// The `Content-Type` a scrape response must carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// An append-only builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    buf: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the `# HELP` and `# TYPE` header pair for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn help(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Write one sample line `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.buf.push_str(name);
        push_labels(&mut self.buf, labels, None);
        self.buf.push(' ');
        push_value(&mut self.buf, value);
        self.buf.push('\n');
    }

    /// Write a full histogram family member: `_bucket` lines with
    /// cumulative counts and `le` bounds (ending in `+Inf`), then
    /// `_sum` and `_count`. The caller writes the `help` header once
    /// per family.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        let mut cumulative = 0u64;
        for (i, &c) in snap.counts.iter().enumerate() {
            cumulative += c;
            self.buf.push_str(name);
            self.buf.push_str("_bucket");
            push_labels(&mut self.buf, labels, Some(snap.upper_bound_seconds(i)));
            let _ = writeln!(self.buf, " {cumulative}");
        }
        self.buf.push_str(name);
        self.buf.push_str("_sum");
        push_labels(&mut self.buf, labels, None);
        let _ = writeln!(self.buf, " {}", snap.sum_seconds);
        self.buf.push_str(name);
        self.buf.push_str("_count");
        push_labels(&mut self.buf, labels, None);
        let _ = writeln!(self.buf, " {}", snap.count);
    }

    /// The finished document.
    pub fn into_string(self) -> String {
        self.buf
    }
}

fn push_labels(out: &mut String, labels: &[(&str, &str)], le: Option<f64>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        push_escaped_label(out, v);
        out.push('"');
    }
    if let Some(bound) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        if bound.is_infinite() {
            out.push_str("+Inf");
        } else {
            let _ = write!(out, "{bound}");
        }
        out.push('"');
    }
    out.push('}');
}

fn push_escaped_label(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// Label lookup.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse an exposition document back into samples (comments and blank
/// lines are skipped but `# TYPE` declarations are checked for
/// well-formedness). This consumes exactly the subset [`PromWriter`]
/// emits — enough for golden tests and scrape validation.
pub fn parse_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (name, kind) = (parts.next(), parts.next());
                if name.is_none()
                    || !matches!(kind, Some("counter" | "gauge" | "histogram" | "summary"))
                {
                    return Err(format!("line {}: malformed TYPE declaration", lineno + 1));
                }
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (head, value_text) = match line.find('{') {
        Some(_) => {
            let close = line.rfind('}').ok_or_else(|| "unterminated label set".to_string())?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            (name, parts.next().unwrap_or("").trim())
        }
    };
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad value {v:?}"))?,
    };
    let (name, labels) = match head.find('{') {
        None => (head.to_string(), Vec::new()),
        Some(open) => {
            let name = head[..open].to_string();
            let body = &head[open + 1..head.len() - 1];
            (name, parse_labels(body)?)
        }
    };
    if name.is_empty() {
        return Err("empty metric name".into());
    }
    Ok(PromSample { name, labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let b = body.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let eq =
            body[i..].find('=').map(|o| i + o).ok_or_else(|| "label without '='".to_string())?;
        let key = body[i..eq].trim().to_string();
        if b.get(eq + 1) != Some(&b'"') {
            return Err("label value must be quoted".into());
        }
        let mut value = String::new();
        let mut j = eq + 2;
        loop {
            match b.get(j) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => {
                    j += 1;
                    break;
                }
                Some(b'\\') => {
                    match b.get(j + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad label escape".into()),
                    }
                    j += 2;
                }
                Some(_) => {
                    let rest = &body[j..];
                    let c = rest.chars().next().unwrap();
                    value.push(c);
                    j += c.len_utf8();
                }
            }
        }
        labels.push((key, value));
        if b.get(j) == Some(&b',') {
            j += 1;
        }
        i = j;
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    #[test]
    fn golden_format_help_type_and_samples() {
        let mut w = PromWriter::new();
        w.help("psd_requests_total", "counter", "Completed requests per class.");
        w.sample("psd_requests_total", &[("class", "0")], 41.0);
        w.sample("psd_requests_total", &[("class", "1")], 7.0);
        w.help("psd_rate", "gauge", "Allocated processing rate.");
        w.sample("psd_rate", &[], 0.625);
        let text = w.into_string();
        assert_eq!(
            text,
            "# HELP psd_requests_total Completed requests per class.\n\
             # TYPE psd_requests_total counter\n\
             psd_requests_total{class=\"0\"} 41\n\
             psd_requests_total{class=\"1\"} 7\n\
             # HELP psd_rate Allocated processing rate.\n\
             # TYPE psd_rate gauge\n\
             psd_rate 0.625\n"
        );
    }

    #[test]
    fn label_values_are_escaped_and_round_trip() {
        let mut w = PromWriter::new();
        w.sample("m", &[("path", "a\\b\"c\nd")], 1.0);
        let text = w.into_string();
        assert_eq!(text, "m{path=\"a\\\\b\\\"c\\nd\"} 1\n");
        let parsed = parse_text(&text).expect("parse");
        assert_eq!(parsed[0].label("path"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let h = LogHistogram::new();
        for ns in [800, 1_500, 1_500, 9_000_000] {
            h.observe_ns(ns);
        }
        let mut w = PromWriter::new();
        w.help("psd_latency_seconds", "histogram", "Request latency.");
        w.histogram("psd_latency_seconds", &[("class", "0")], &h.snapshot());
        let text = w.into_string();
        let samples = parse_text(&text).expect("parse");
        let buckets: Vec<&PromSample> =
            samples.iter().filter(|s| s.name == "psd_latency_seconds_bucket").collect();
        assert_eq!(buckets.len(), crate::hist::HIST_BUCKETS);
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "buckets must be cumulative");
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value, 4.0);
        let count = samples.iter().find(|s| s.name == "psd_latency_seconds_count").unwrap();
        assert_eq!(count.value, 4.0);
        let sum = samples.iter().find(|s| s.name == "psd_latency_seconds_sum").unwrap();
        assert!((sum.value - (800.0 + 1_500.0 * 2.0 + 9_000_000.0) * 1e-9).abs() < 1e-12);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("name{l=\"v\" 3").is_err());
        assert!(parse_text("name{l=v} 3").is_err());
        assert!(parse_text("name oops").is_err());
        assert!(parse_text("# TYPE name sideways").is_err());
    }
}
