//! The control-decision flight recorder: every control window, the
//! host (live-server monitor or desim engine) records what the
//! controller *saw* ([`WindowObservation`]), what it *answered*
//! ([`ControlDirective`]), what was actually applied, and any named
//! internal state the controller exposes — into a bounded ring.
//!
//! A dump serializes to JSON (`GET /trace/control` on the server, an
//! export helper in desim) and parses back, so a trace captured on one
//! host can be [replayed](replay) through a fresh controller on
//! another — the first concrete step toward the digital-twin roadmap
//! item: run the live server's observations through the simulator's
//! controller and diff the directives.

use crate::json::{
    push_json_f64, push_json_f64_array, push_json_str, push_json_u64_array, JsonValue,
};
use psd_control::{ControlDirective, RateController, WindowObservation};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One control window's complete decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlTrace {
    /// Host time of the control instant, seconds since run start.
    pub at_s: f64,
    /// Configuration epoch the decision was made under.
    pub epoch: u64,
    /// What the estimator fed the controller.
    pub observation: WindowObservation,
    /// What the controller answered.
    pub directive: ControlDirective,
    /// The rate vector actually in force after applying the directive
    /// (equals the previous rates when the directive kept them).
    pub applied_rates: Vec<f64>,
    /// Named internal state vectors (e.g. feedback integral terms),
    /// from [`RateController::internals`].
    pub internals: Vec<(String, Vec<f64>)>,
}

impl ControlTrace {
    /// Append this trace as a JSON object.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"at_s\":");
        push_json_f64(out, self.at_s);
        let _ = write!(out, ",\"epoch\":{}", self.epoch);
        let o = &self.observation;
        let _ = write!(
            out,
            ",\"observation\":{{\"index\":{},\"start\":{},\"end\":{}",
            o.index, o.start, o.end
        );
        out.push_str(",\"arrivals\":");
        push_json_u64_array(out, &o.arrivals);
        out.push_str(",\"arrived_work\":");
        push_json_f64_array(out, &o.arrived_work);
        out.push_str(",\"shed_work\":");
        push_json_f64_array(out, &o.shed_work);
        out.push_str(",\"completions\":");
        push_json_u64_array(out, &o.completions);
        out.push_str(",\"backlog\":");
        push_json_u64_array(out, &o.backlog);
        out.push_str(",\"slowdown_sums\":");
        push_json_f64_array(out, &o.slowdown_sums);
        out.push_str("},\"directive\":{\"rates\":");
        match &self.directive.rates {
            Some(r) => push_json_f64_array(out, r),
            None => out.push_str("null"),
        }
        out.push_str(",\"admit_probability\":");
        match &self.directive.admit_probability {
            Some(p) => push_json_f64_array(out, p),
            None => out.push_str("null"),
        }
        out.push_str("},\"applied_rates\":");
        push_json_f64_array(out, &self.applied_rates);
        out.push_str(",\"internals\":{");
        for (i, (name, values)) in self.internals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(out, name);
            out.push(':');
            push_json_f64_array(out, values);
        }
        out.push_str("}}");
    }

    /// Rebuild a trace from a parsed JSON object (the inverse of
    /// [`Self::push_json`]).
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field {name:?}"));
        let obs = field("observation")?;
        let obs_field =
            |name: &str| obs.get(name).ok_or_else(|| format!("missing observation.{name}"));
        let f64s = |val: &JsonValue, name: &str| {
            val.f64_array().ok_or_else(|| format!("{name} must be a number array"))
        };
        let u64s = |val: &JsonValue, name: &str| {
            val.u64_array().ok_or_else(|| format!("{name} must be an integer array"))
        };
        let observation = WindowObservation {
            index: obs_field("index")?.as_u64().ok_or("bad observation.index")?,
            start: obs_field("start")?.as_f64().ok_or("bad observation.start")?,
            end: obs_field("end")?.as_f64().ok_or("bad observation.end")?,
            arrivals: u64s(obs_field("arrivals")?, "arrivals")?,
            arrived_work: f64s(obs_field("arrived_work")?, "arrived_work")?,
            shed_work: f64s(obs_field("shed_work")?, "shed_work")?,
            completions: u64s(obs_field("completions")?, "completions")?,
            backlog: u64s(obs_field("backlog")?, "backlog")?,
            slowdown_sums: f64s(obs_field("slowdown_sums")?, "slowdown_sums")?,
        };
        let dir = field("directive")?;
        let opt_f64s = |val: Option<&JsonValue>, name: &str| -> Result<Option<Vec<f64>>, String> {
            match val {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => f64s(v, name).map(Some),
            }
        };
        let directive = ControlDirective {
            rates: opt_f64s(dir.get("rates"), "directive.rates")?,
            admit_probability: opt_f64s(
                dir.get("admit_probability"),
                "directive.admit_probability",
            )?,
        };
        let mut internals = Vec::new();
        if let Some(JsonValue::Object(fields)) = v.get("internals") {
            for (name, values) in fields {
                internals.push((name.clone(), f64s(values, "internals")?));
            }
        }
        Ok(Self {
            at_s: field("at_s")?.as_f64().ok_or("bad at_s")?,
            epoch: field("epoch")?.as_u64().ok_or("bad epoch")?,
            observation,
            directive,
            applied_rates: f64s(field("applied_rates")?, "applied_rates")?,
            internals,
        })
    }
}

/// A bounded ring of [`ControlTrace`]s. Control windows are hundreds
/// of milliseconds apart, so one mutex and per-record allocation are
/// fine here — this is the cold plane, unlike the span ring.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<ControlTrace>>,
    recorded: std::sync::atomic::AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` windows.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            recorded: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Record one window, evicting the oldest beyond capacity.
    pub fn record(&self, trace: ControlTrace) {
        let mut g = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() == self.capacity {
            g.pop_front();
        }
        g.push_back(trace);
        self.recorded.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Windows recorded since start (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Copy out the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<ControlTrace> {
        let g = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        g.iter().cloned().collect()
    }

    /// Serialize the retained traces as the `GET /trace/control`
    /// response body.
    pub fn to_json(&self) -> String {
        traces_to_json(&self.snapshot(), self.capacity, self.recorded())
    }
}

/// Serialize a trace list with recorder metadata.
pub fn traces_to_json(traces: &[ControlTrace], capacity: usize, recorded: u64) -> String {
    let mut out = String::with_capacity(128 + traces.len() * 512);
    let _ = write!(
        out,
        "{{\"capacity\":{capacity},\"recorded\":{recorded},\"count\":{},\"traces\":[",
        traces.len()
    );
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        t.push_json(&mut out);
    }
    out.push_str("]}");
    out
}

/// Parse a dump produced by [`FlightRecorder::to_json`] /
/// [`traces_to_json`] back into traces.
pub fn parse_traces(text: &str) -> Result<Vec<ControlTrace>, String> {
    let v = JsonValue::parse(text)?;
    let traces = v.get("traces").and_then(JsonValue::as_array).ok_or("missing \"traces\" array")?;
    traces.iter().map(ControlTrace::from_json).collect()
}

/// One window's replay outcome: the recorded directive's rates vs what
/// the replayed controller answered for the same observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayDiff {
    /// Observation window index.
    pub window: u64,
    /// Control instant.
    pub at_s: f64,
    /// Rates from the recorded directive (`None` = kept current).
    pub recorded: Option<Vec<f64>>,
    /// Rates from the replayed controller.
    pub replayed: Option<Vec<f64>>,
    /// Largest absolute per-class rate difference; `0` when both kept
    /// the current rates, `+Inf` on a shape mismatch (one realloced,
    /// the other did not).
    pub max_abs_diff: f64,
}

/// Feed each recorded observation through `controller` in order and
/// diff its directives against the recorded ones — the live trace
/// replayed through the simulator's controller.
pub fn replay(controller: &mut dyn RateController, traces: &[ControlTrace]) -> Vec<ReplayDiff> {
    traces
        .iter()
        .map(|t| {
            let d = controller.control(t.at_s, &t.observation);
            let max_abs_diff = match (&t.directive.rates, &d.rates) {
                (None, None) => 0.0,
                (Some(a), Some(b)) if a.len() == b.len() => {
                    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
                }
                _ => f64::INFINITY,
            };
            ReplayDiff {
                window: t.observation.index,
                at_s: t.at_s,
                recorded: t.directive.rates.clone(),
                replayed: d.rates,
                max_abs_diff,
            }
        })
        .collect()
}

/// The largest divergence across a replay (0 for an empty list).
pub fn max_divergence(diffs: &[ReplayDiff]) -> f64 {
    diffs.iter().map(|d| d.max_abs_diff).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_control::StaticRates;

    fn trace(index: u64, rates: Option<Vec<f64>>) -> ControlTrace {
        ControlTrace {
            at_s: index as f64,
            epoch: 1,
            observation: WindowObservation {
                index,
                start: index as f64 - 1.0,
                end: index as f64,
                arrivals: vec![10, 20],
                arrived_work: vec![1.5, 2.5],
                shed_work: vec![0.0, 0.25],
                completions: vec![9, 19],
                backlog: vec![1, 2],
                slowdown_sums: vec![18.0, 76.0],
            },
            directive: ControlDirective { rates, admit_probability: Some(vec![1.0, 0.8]) },
            applied_rates: vec![0.4, 0.6],
            internals: vec![("integral_terms".into(), vec![0.01, -0.02])],
        }
    }

    #[test]
    fn traces_round_trip_through_json() {
        let original = vec![trace(0, None), trace(1, Some(vec![0.3, 0.7]))];
        let text = traces_to_json(&original, 16, 2);
        let parsed = parse_traces(&text).expect("parse");
        assert_eq!(parsed, original);
    }

    #[test]
    fn recorder_bounds_retention_and_counts_everything() {
        let rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.record(trace(i, None));
        }
        let kept = rec.snapshot();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].observation.index, 7, "oldest retained is window 7");
        assert_eq!(rec.recorded(), 10);
        let parsed = parse_traces(&rec.to_json()).expect("parse dump");
        assert_eq!(parsed, kept);
    }

    #[test]
    fn replaying_a_matching_controller_diverges_nowhere() {
        // StaticRates never re-allocates; a trace recorded from it has
        // rates: None everywhere, so a fresh StaticRates replays it
        // exactly.
        let traces = vec![trace(0, None), trace(1, None)];
        let mut controller = StaticRates::even(2);
        controller.initial_rates(2);
        let diffs = replay(&mut controller, &traces);
        assert_eq!(diffs.len(), 2);
        assert_eq!(max_divergence(&diffs), 0.0);
    }

    #[test]
    fn replay_flags_shape_mismatches_as_infinite() {
        let traces = vec![trace(0, Some(vec![0.5, 0.5]))];
        let mut controller = StaticRates::even(2);
        controller.initial_rates(2);
        let diffs = replay(&mut controller, &traces);
        assert!(diffs[0].max_abs_diff.is_infinite());
    }
}
