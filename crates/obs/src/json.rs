//! Minimal JSON support shared by every exposition path in this crate:
//! escape-correct writer helpers (the hot paths build JSON by hand into
//! a caller-owned `String`) and a small recursive-descent parser used to
//! read a flight-recorder dump back for replay. Both ends are
//! deliberately tiny — just enough to round-trip this crate's own
//! output — so the observability layer stays dependency-free.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (quotes included) with the
/// mandatory escapes (`"`, `\`, control characters).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` as a JSON number; non-finite values (which
/// JSON cannot express) become `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `[a, b, ...]` for a float slice.
pub fn push_json_f64_array(out: &mut String, vs: &[f64]) {
    out.push('[');
    for (i, &v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_f64(out, v);
    }
    out.push(']');
}

/// Append `[a, b, ...]` for an integer slice.
pub fn push_json_u64_array(out: &mut String, vs: &[u64]) {
    out.push('[');
    for (i, &v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// A parsed JSON value. Numbers are kept as `f64` — every quantity this
/// crate serializes fits without loss at the precision we care about.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order (duplicate keys keep the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(vs) => Some(vs),
            _ => None,
        }
    }

    /// An array of numbers, collected.
    pub fn f64_array(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(JsonValue::as_f64).collect()
    }

    /// An array of non-negative integers, collected.
    pub fn u64_array(&self) -> Option<Vec<u64>> {
        self.as_array()?.iter().map(JsonValue::as_u64).collect()
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("bad number at offset {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by this
                            // crate's writer; map lone surrogates to the
                            // replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar; the input is a &str so
                    // the byte stream is valid by construction.
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // Called with self.i on the 'u'.
        let start = self.i + 1;
        let end = start + 4;
        if end > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.b[start..end]).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.i = end;
        Ok(code)
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parser_reads_them_back() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}e");
        let v = JsonValue::parse(&out).expect("parse");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}e"));
    }

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(r#"{"a": [1, 2.5, -3e1], "b": {"c": null, "d": true}}"#)
            .expect("parse");
        assert_eq!(v.get("a").unwrap().f64_array(), Some(vec![1.0, 2.5, -30.0]));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("[1,").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn u64_array_round_trips() {
        let mut out = String::new();
        push_json_u64_array(&mut out, &[0, 7, u32::MAX as u64]);
        let v = JsonValue::parse(&out).expect("parse");
        assert_eq!(v.u64_array(), Some(vec![0, 7, u32::MAX as u64]));
    }
}
