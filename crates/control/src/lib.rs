//! # psd-control — the shared control-plane contract
//!
//! The rate-controller interface between *both* execution substrates —
//! the discrete-event simulator (`psd-desim`) and the live server
//! (`psd-server`) — and the PSD allocation strategy implemented in
//! `psd-core`. This crate is dependency-free on purpose: it is the one
//! vocabulary every layer of the stack speaks, so the exact same
//! controller object can drive a simulation and a socket-accepting
//! server without modification.
//!
//! Every control period the host (simulator engine or server monitor)
//! closes an observation window and hands it to the controller, which
//! answers with a [`ControlDirective`]: optionally a fresh rate vector,
//! and optionally per-class admission probabilities. This mirrors the
//! paper's split between the *load estimator* (inputs) and the *rate
//! allocator* (Eq. 17), re-run every 1000 time units — extended with
//! the admission output that Eq. 17 alone cannot express (it has no
//! feasible solution at ρ ≥ 1).
//!
//! The concrete controllers (open-loop Eq. 17, the slowdown-feedback
//! extension, admission composition) live in `psd_core::control`, which
//! re-exports everything here; `psd_desim` re-exports the contract for
//! backwards compatibility.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// What the load estimator gets to see about the window just ended.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowObservation {
    /// Index of the window (0-based since simulation start).
    pub index: u64,
    /// Window start time.
    pub start: f64,
    /// Window end time (the control instant).
    pub end: f64,
    /// Per-class arrival counts inside the window.
    pub arrivals: Vec<u64>,
    /// Per-class sum of **admitted** work (full-rate sizes) inside the
    /// window — what actually entered the queues.
    pub arrived_work: Vec<f64>,
    /// Per-class sum of work turned away at the door by admission
    /// control inside the window. Zeros when the host has no admission
    /// path (the simulator, or a server without a cap). Offered load is
    /// `arrived_work + shed_work` — see [`Self::offered_loads`]; an
    /// admission controller that only saw post-shed load would
    /// equilibrate *above* its cap.
    pub shed_work: Vec<f64>,
    /// Per-class completions inside the window.
    pub completions: Vec<u64>,
    /// Per-class backlog (queued + in service) at the control instant.
    pub backlog: Vec<u64>,
    /// Per-class sum of slowdowns of this window's departures (divide by
    /// `completions` for the mean — see [`Self::mean_slowdowns`]).
    pub slowdown_sums: Vec<f64>,
}

impl WindowObservation {
    /// Observed per-class arrival rate over this window.
    pub fn arrival_rates(&self) -> Vec<f64> {
        let dur = (self.end - self.start).max(f64::MIN_POSITIVE);
        self.arrivals.iter().map(|&a| a as f64 / dur).collect()
    }

    /// Observed per-class **offered** load (work per time) over this
    /// window: admitted plus shed — the load at the door, which is what
    /// admission decisions must act on.
    pub fn offered_loads(&self) -> Vec<f64> {
        let dur = (self.end - self.start).max(f64::MIN_POSITIVE);
        self.arrived_work.iter().zip(&self.shed_work).map(|(&w, &s)| (w + s) / dur).collect()
    }

    /// Mean slowdown of each class's departures in this window (`None`
    /// for classes with no departures).
    pub fn mean_slowdowns(&self) -> Vec<Option<f64>> {
        self.slowdown_sums
            .iter()
            .zip(&self.completions)
            .map(|(&s, &c)| (c > 0).then(|| s / c as f64))
            .collect()
    }
}

/// What a controller tells the host to do for the next window: rates
/// for the task servers and (optionally) per-class admission
/// probabilities, so overload shedding composes with any controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDirective {
    /// `Some(rates)` to re-allocate the task servers, `None` to keep
    /// the current assignment.
    pub rates: Option<Vec<f64>>,
    /// `Some(p)` with one admission probability per class (in `[0, 1]`,
    /// class 0 first) to shed load at the door; `None` admits
    /// everything.
    pub admit_probability: Option<Vec<f64>>,
}

impl ControlDirective {
    /// A directive that only (re)allocates rates and admits everything.
    pub fn rates_only(rates: Option<Vec<f64>>) -> Self {
        Self { rates, admit_probability: None }
    }
}

/// A strategy that assigns processing rates to the task servers.
///
/// Implementations only need the two rate methods; hosts that support
/// admission shedding call [`RateController::control`], whose default
/// implementation wraps [`RateController::reallocate`] and admits
/// everything — so every pre-existing controller composes unchanged.
pub trait RateController {
    /// Rates to use from time 0 until the first control tick. Must have
    /// length `n_classes`; entries must be ≥ 0 and sum to ≤ 1 + ε.
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64>;

    /// Called at every control tick with the window just observed.
    /// Return `Some(rates)` to re-allocate or `None` to keep the current
    /// assignment.
    fn reallocate(&mut self, now: f64, window: &WindowObservation) -> Option<Vec<f64>>;

    /// The unified control entry point: both the simulator engine and
    /// the live server monitor call this every window. The default
    /// forwards to [`RateController::reallocate`] with no admission
    /// control; wrappers like `psd_core::control::Admitting` override it
    /// to attach admission probabilities.
    fn control(&mut self, now: f64, window: &WindowObservation) -> ControlDirective {
        ControlDirective::rates_only(self.reallocate(now, window))
    }

    /// Named internal state vectors for tracing — what a flight
    /// recorder stores next to each directive so a decision can be
    /// audited and replayed. Stateless controllers keep the default
    /// (nothing); e.g. the slowdown-feedback controller exposes its
    /// per-class integral terms.
    fn internals(&self) -> Vec<(String, Vec<f64>)> {
        Vec::new()
    }
}

impl<T: RateController + ?Sized> RateController for Box<T> {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        (**self).initial_rates(n_classes)
    }

    fn reallocate(&mut self, now: f64, window: &WindowObservation) -> Option<Vec<f64>> {
        (**self).reallocate(now, window)
    }

    fn control(&mut self, now: f64, window: &WindowObservation) -> ControlDirective {
        (**self).control(now, window)
    }

    fn internals(&self) -> Vec<(String, Vec<f64>)> {
        (**self).internals()
    }
}

/// A controller that never re-allocates: fixed rates for the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticRates {
    rates: Vec<f64>,
}

impl StaticRates {
    /// Fixed rate vector (must be non-empty, entries ≥ 0, sum ≤ 1 + ε).
    pub fn new(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "StaticRates needs at least one class");
        let sum: f64 = rates.iter().sum();
        assert!(rates.iter().all(|&r| r >= 0.0), "rates must be non-negative");
        assert!(sum <= 1.0 + 1e-9, "rates sum to {sum} > 1");
        Self { rates }
    }

    /// Capacity split evenly over `n` classes.
    pub fn even(n: usize) -> Self {
        assert!(n > 0);
        Self { rates: vec![1.0 / n as f64; n] }
    }
}

impl RateController for StaticRates {
    fn initial_rates(&mut self, n_classes: usize) -> Vec<f64> {
        assert_eq!(n_classes, self.rates.len(), "class count mismatch");
        self.rates.clone()
    }

    fn reallocate(&mut self, _now: f64, _window: &WindowObservation) -> Option<Vec<f64>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(arrivals: Vec<u64>) -> WindowObservation {
        let n = arrivals.len();
        WindowObservation {
            index: 0,
            start: 0.0,
            end: 1.0,
            arrivals,
            arrived_work: vec![0.0; n],
            shed_work: vec![0.0; n],
            completions: vec![0; n],
            backlog: vec![0; n],
            slowdown_sums: vec![0.0; n],
        }
    }

    #[test]
    fn window_rates() {
        let w = WindowObservation {
            index: 3,
            start: 3000.0,
            end: 4000.0,
            arrivals: vec![500, 1000],
            arrived_work: vec![150.0, 290.0],
            shed_work: vec![0.0; 2],
            completions: vec![498, 1001],
            backlog: vec![2, 0],
            slowdown_sums: vec![996.0, 500.5],
        };
        let r = w.arrival_rates();
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
        let l = w.offered_loads();
        assert!((l[0] - 0.15).abs() < 1e-12);
        let s = w.mean_slowdowns();
        assert!((s[0].unwrap() - 2.0).abs() < 1e-12);
        assert!((s[1].unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_slowdowns_none_for_empty_class() {
        let w = WindowObservation {
            index: 0,
            start: 0.0,
            end: 1.0,
            arrivals: vec![0, 5],
            arrived_work: vec![0.0, 2.0],
            shed_work: vec![0.0; 2],
            completions: vec![0, 4],
            backlog: vec![0, 1],
            slowdown_sums: vec![0.0, 6.0],
        };
        let s = w.mean_slowdowns();
        assert_eq!(s[0], None);
        assert_eq!(s[1], Some(1.5));
    }

    #[test]
    fn static_rates_basics() {
        let mut c = StaticRates::even(4);
        let r = c.initial_rates(4);
        assert_eq!(r, vec![0.25; 4]);
        assert!(c.reallocate(1.0, &window(vec![0; 4])).is_none());
    }

    #[test]
    fn default_control_wraps_reallocate_and_admits_everything() {
        let mut c = StaticRates::even(2);
        c.initial_rates(2);
        let d = c.control(1.0, &window(vec![3, 4]));
        assert_eq!(d, ControlDirective { rates: None, admit_probability: None });
        assert_eq!(d, ControlDirective::rates_only(None));
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn static_rates_rejects_oversubscription() {
        StaticRates::new(vec![0.7, 0.7]);
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn static_rates_class_count_checked() {
        StaticRates::even(2).initial_rates(3);
    }
}
