//! Tiered Web-content hosting on the *threaded* PSD server.
//!
//! The paper's motivating deployment (§5 cites Web content hosting with
//! differentiated service levels): premium / standard / basic tenants
//! share one machine. Here the task servers are real threads: requests
//! flow through a weighted-fair dispatch queue whose weights are
//! recomputed online by the Eq. 17 allocator from measured arrival
//! rates.
//!
//! Run with: `cargo run --release --example web_hosting_tiers`

use std::sync::Arc;
use std::time::Duration;

use psd::dist::{BoundedPareto, ServiceDist};
use psd::server::driver::{drive, ClassTraffic};
use psd::server::{PsdServer, SchedulerKind, ServerConfig, Workload};

fn main() {
    // Heavy-tailed request costs, mean ≈ 0.29 work units (paper's BP),
    // scaled so one work unit is 300µs of worker time.
    let bp = BoundedPareto::paper_default();
    let mean_cost = psd::dist::ServiceDistribution::mean(&bp);
    let cost_dist = ServiceDist::BoundedPareto(bp);

    let cfg = ServerConfig {
        deltas: vec![1.0, 2.0, 4.0], // premium : standard : basic = 1 : 2 : 4
        mean_cost,
        scheduler: SchedulerKind::Wfq,
        workers: 1,
        work_unit: Duration::from_micros(300),
        // Spin, not sleep: thread::sleep overshoots sub-millisecond
        // targets, which would silently overload the single worker.
        workload: Workload::Spin,
        control_window: Duration::from_millis(100),
        estimator_history: 5,
        ..ServerConfig::default()
    };
    let server = Arc::new(PsdServer::start(cfg));

    // Offered load ≈ 80% of the single worker: 0.8 / (0.29 · 300µs)
    // ≈ 9.2k req/s total, split evenly across tiers.
    let per_tier_rate = 0.8 / (mean_cost * 300e-6) / 3.0;
    println!("Driving 3 tiers at {per_tier_rate:.0} req/s each for 3 seconds...\n");

    let submitted = drive(
        &server,
        &[
            ClassTraffic { rate_per_s: per_tier_rate, cost: cost_dist.clone() },
            ClassTraffic { rate_per_s: per_tier_rate, cost: cost_dist.clone() },
            ClassTraffic { rate_per_s: per_tier_rate, cost: cost_dist },
        ],
        Duration::from_secs(3),
        42,
    );

    let stats = Arc::try_unwrap(server).ok().expect("driver threads joined").shutdown();

    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "tier", "submitted", "completed", "delay(ms)", "slowdown", "vs prem"
    );
    let names = ["premium", "standard", "basic"];
    let s0 = stats.classes[0].mean_slowdown.max(1e-9);
    for (i, name) in names.iter().enumerate() {
        let c = &stats.classes[i];
        println!(
            "{:>10} {:>10} {:>10} {:>12.3} {:>12.3} {:>10.2}",
            name,
            submitted[i],
            c.completed,
            c.mean_delay * 1e3,
            c.mean_slowdown,
            c.mean_slowdown / s0,
        );
    }
    println!("\nTarget ratios are 1 : 2 : 4. Thread-scheduling jitter and the");
    println!("short horizon make this noisier than the simulator, but the");
    println!("ordering premium < standard < basic must hold.");
}
