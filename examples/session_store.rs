//! A closed-loop online store (paper §2.2's session model, end to end).
//!
//! A fixed population of shoppers cycles home → browse → search → cart
//! → checkout with think times; each state's requests go to one of
//! three service classes (checkout = premium δ=1, cart/browse = δ=2,
//! search = δ=3). The PSD controller runs unchanged on the closed-loop
//! traffic — arrival rates now *react* to the allocation, a regime
//! outside the paper's open-loop analysis, which is exactly why it is
//! worth watching.
//!
//! Run with: `cargo run --release --example session_store`

use psd::core::controller::{ControllerParams, HeterogeneousPsdController};
use psd::desim::session::{run_sessions, SessionConfig, SessionState};
use psd::desim::StaticRates;
use psd::dist::{Deterministic, Moments, ServiceDist, ServiceDistribution, UniformService};

fn det(v: f64) -> ServiceDist {
    ServiceDist::Deterministic(Deterministic::new(v).expect("positive"))
}

fn store_config(n_users: usize, seed: u64) -> SessionConfig {
    // States: 0=home 1=browse 2=search 3=cart 4=checkout
    // Classes: 0=checkout(δ1), 1=cart+browse+home(δ2), 2=search(δ3)
    let uni =
        |a: f64, b: f64| ServiceDist::Uniform(UniformService::new(a, b).expect("valid interval"));
    SessionConfig {
        states: vec![
            SessionState {
                class: 1,
                service: det(0.3), // home entry: near-constant (paper §2.2)
                mean_think: 40.0,
                next: vec![0.0, 0.6, 0.3, 0.1, 0.0],
            },
            SessionState {
                class: 1,
                service: uni(0.2, 1.2), // browse
                mean_think: 80.0,
                next: vec![0.05, 0.45, 0.25, 0.2, 0.05],
            },
            SessionState {
                class: 2,
                service: uni(0.5, 3.0), // search: expensive, best-effort
                mean_think: 60.0,
                next: vec![0.05, 0.5, 0.25, 0.15, 0.05],
            },
            SessionState {
                class: 1,
                service: det(0.4), // cart update
                mean_think: 40.0,
                next: vec![0.0, 0.3, 0.1, 0.2, 0.4],
            },
            SessionState {
                class: 0,
                service: det(0.8), // checkout: premium
                mean_think: 20.0,
                next: vec![1.0, 0.0, 0.0, 0.0, 0.0], // session restarts
            },
        ],
        initial_state: 0,
        n_classes: 3,
        n_users,
        end_time: 30_000.0,
        warmup: 3_000.0,
        control_period: 500.0,
        seed,
    }
}

/// Weighted mixture of moment sets (all three statistics are linear in
/// the mixture weights).
fn mix(parts: &[(f64, Moments)]) -> Moments {
    let total: f64 = parts.iter().map(|(w, _)| w).sum();
    let mut out = Moments { mean: 0.0, second_moment: 0.0, mean_inverse: Some(0.0) };
    for (w, m) in parts {
        let w = w / total;
        out.mean += w * m.mean;
        out.second_moment += w * m.second_moment;
        out.mean_inverse =
            Some(out.mean_inverse.unwrap() + w * m.mean_inverse.expect("finite E[1/X]"));
    }
    out
}

fn main() {
    let deltas = vec![1.0, 2.0, 3.0];
    println!("Closed-loop store: 5 session states -> 3 classes, deltas (1, 2, 3)\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "users", "controller", "s(checkout)", "s(browse)", "s(search)", "r2/r1", "r3/r1"
    );

    for &n_users in &[30usize, 60, 90] {
        for psd_on in [false, true] {
            let (mut s, mut n) = (vec![0.0; 3], 0u32);
            for seed in 0..6u64 {
                let cfg = store_config(n_users, seed);
                let controller: Box<dyn psd::desim::RateController> = if psd_on {
                    // Per-class service moments (the heterogeneous Eq. 17
                    // extension — classes have *different* distributions
                    // here, unlike the paper's shared Bounded Pareto).
                    // Class 1 mixes home/browse/cart roughly 1 : 3 : 1
                    // by state visit frequency.
                    let checkout = Deterministic::new(0.8).unwrap().moments();
                    let class1 = mix(&[
                        (1.0, Deterministic::new(0.3).unwrap().moments()),
                        (3.0, UniformService::new(0.2, 1.2).unwrap().moments()),
                        (1.0, Deterministic::new(0.4).unwrap().moments()),
                    ]);
                    let search = UniformService::new(0.5, 3.0).unwrap().moments();
                    Box::new(HeterogeneousPsdController::new(
                        deltas.clone(),
                        vec![checkout, class1, search],
                        ControllerParams::default(),
                    ))
                } else {
                    Box::new(StaticRates::even(3))
                };
                let out = run_sessions(cfg, controller);
                let mut ok = true;
                for (c, slot) in s.iter_mut().enumerate() {
                    match out.mean_slowdown(c) {
                        Some(v) => *slot += v,
                        None => ok = false,
                    }
                }
                if ok {
                    n += 1;
                }
            }
            let nf = n.max(1) as f64;
            let (a, b, c) = (s[0] / nf, s[1] / nf, s[2] / nf);
            println!(
                "{:>7} {:>12} {:>12.3} {:>12.3} {:>12.3} {:>8.2} {:>8.2}",
                n_users,
                if psd_on { "PSD" } else { "even" },
                a,
                b,
                c,
                b / a.max(1e-9),
                c / a.max(1e-9),
            );
        }
    }

    println!("\nUnder the even split the spacings drift with population (15x .. 300x).");
    println!("The heterogeneous PSD controller pins them near 1 : 2 : 3 at every");
    println!("population — even though the closed loop violates the open-loop Poisson");
    println!("assumption behind Eq. (17).");
}
