//! Quickstart: proportional slowdown differentiation in ~40 lines.
//!
//! Two request classes share one server. Class 1 pays for premium
//! service (δ₁ = 1); class 2 is best-effort (δ₂ = 2). The PSD rate
//! allocator keeps class 2's average slowdown at twice class 1's —
//! regardless of the load level — by re-dividing the processing rate
//! every control window.
//!
//! Run with: `cargo run --release --example quickstart`

use psd::core::config::PsdConfig;
use psd::core::experiment::Experiment;

fn main() {
    println!("PSD quickstart: 2 classes, deltas (1, 2), BP(1.5, 0.1, 100) service\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "load%", "sim class1", "exp class1", "sim class2", "exp class2", "ratio"
    );
    for load in [0.3, 0.5, 0.7, 0.9] {
        // The paper's setup, shortened from 61k to 20k time units so the
        // example finishes in seconds.
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], load).with_horizon(20_000.0, 2_000.0);
        let report = Experiment::new(cfg).runs(10).base_seed(1).run();

        let sim = report.mean_slowdowns();
        let exp = report.expected_slowdowns().expect("closed form exists for Bounded Pareto");
        println!(
            "{:>7.0} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>9.3}",
            load * 100.0,
            sim[0],
            exp[0],
            sim[1],
            exp[1],
            sim[1] / sim[0],
        );
    }
    println!("\nThe achieved ratio stays near delta2/delta1 = 2 across loads —");
    println!("that is the predictability property the paper's Eq. (17) provides.");
}
