//! What happens as the server approaches — and crosses — saturation?
//!
//! The Eq. 17 allocation requires total load ρ < 1. This example sweeps
//! ρ up to 0.98 to show the 1/(1−ρ) blow-up that the paper's Figures
//! 2–4 display on a log axis, then pushes the *online* controller into
//! transient overload (a bursty class) to demonstrate the documented
//! graceful degradation: the controller falls back to load-proportional
//! shares instead of failing.
//!
//! Run with: `cargo run --release --example overload_study`

use psd::core::allocation::{psd_rates, AllocationError};
use psd::core::config::PsdConfig;
use psd::core::experiment::Experiment;
use psd::dist::{BoundedPareto, ServiceDistribution};

fn main() {
    println!("Part 1 — slowdown vs load (deltas (1,2), the 1/(1-rho) wall)\n");
    println!("{:>7} {:>12} {:>12} {:>12}", "load%", "sim class1", "sim class2", "expected c1");
    for load in [0.5, 0.7, 0.8, 0.9, 0.95, 0.98] {
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], load).with_horizon(15_000.0, 2_000.0);
        let report = Experiment::new(cfg).runs(6).base_seed(3).run();
        let sim = report.mean_slowdowns();
        let exp = report.expected_slowdowns().expect("stable below 1");
        println!("{:>7.0} {:>12.2} {:>12.2} {:>12.2}", load * 100.0, sim[0], sim[1], exp[0]);
    }

    println!("\nPart 2 — the allocator refuses infeasible loads:\n");
    let bp = BoundedPareto::paper_default();
    let ex = bp.mean();
    match psd_rates(&[0.6 / ex, 0.6 / ex], &[1.0, 2.0], ex) {
        Err(AllocationError::Infeasible { total_load }) => {
            println!("  psd_rates at rho = {total_load:.2}: Err(Infeasible) — as designed.");
        }
        other => println!("  unexpected: {other:?}"),
    }

    println!("\nPart 3 — online controller under transient overload:\n");
    // Nominal load 0.9; the estimator will occasionally see windows that
    // look overloaded under the heavy-tailed sizes. The clamped
    // allocator falls back to load-proportional shares in those windows
    // rather than panicking, and differentiation recovers afterwards.
    let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.9).with_horizon(20_000.0, 2_000.0);
    let report = Experiment::new(cfg).runs(6).base_seed(11).run();
    let sim = report.mean_slowdowns();
    println!(
        "  at rho = 0.90 the run completes with slowdowns ({:.1}, {:.1}), ratio {:.2}",
        sim[0],
        sim[1],
        sim[1] / sim[0]
    );
    println!("  (target ratio 2.0; estimation error at high load widens the spread —");
    println!("   exactly the controllability caveat of the paper's Figure 9).");
}
