//! Tour the load-generation scenario catalog against the real server.
//!
//! Runs shortened versions of an open-loop `steady` scenario and a
//! closed-loop session scenario end to end — real TCP sockets, the
//! threaded PSD server, the online Eq. 17 allocator — and prints the
//! per-class slowdown-differentiation reports.
//!
//! ```sh
//! cargo run --release --example loadtest_catalog
//! ```
//!
//! For full-length runs and the other scenarios (`burst`,
//! `flashcrowd`, `stepload`, `classmix-shift`) use the CLI:
//! `cargo run --release -p psd-loadgen --bin psd_loadtest -- --list`.

use std::time::Duration;

use psd::loadgen::{harness, LoadMode, Scenario};

fn main() {
    println!("scenario catalog: {:?}\n", Scenario::catalog());

    let mut steady = Scenario::by_name("steady").expect("stock scenario");
    steady.duration = Duration::from_secs(6);
    steady.warmup = Duration::from_secs(2);
    println!("running shortened `steady` (6s)…");
    let out = harness::run_scenario(&steady).expect("steady run");
    println!("{}", out.report.to_markdown());

    let mut closed = Scenario::by_name("closed").expect("stock scenario");
    closed.duration = Duration::from_secs(4);
    closed.warmup = Duration::from_secs(1);
    closed.mode = LoadMode::Closed { sessions: 32, mean_think: Duration::from_millis(20) };
    println!("running shortened `closed` (4s, 32 sessions)…");
    let out = harness::run_scenario(&closed).expect("closed run");
    println!("{}", out.report.to_markdown());
}
