//! Session-based e-commerce workload — the paper's M/D/1 reduction
//! (§2.2, Eq. 15).
//!
//! In a session-based store, requests at some session states ("home
//! entry", "register") take approximately constant service time, so the
//! per-class queue is M/D/1 and the slowdown closed form collapses to
//! `E[S_i] = u_i / (2(1 − u_i))`.
//!
//! This example models three session states as three classes —
//! checkout (premium, δ=1), browse (δ=2), search (δ=3) — with
//! deterministic service, validates the simulator against Eq. 15's
//! model, and shows the PSD ratios holding.
//!
//! Run with: `cargo run --release --example ecommerce_sessions`

use psd::core::config::{ClassConfig, PsdConfig};
use psd::core::experiment::Experiment;
use psd::dist::{Deterministic, ServiceDist};

fn main() {
    // One "time unit" of work per request, exactly.
    let service = ServiceDist::Deterministic(Deterministic::new(1.0).expect("positive"));

    println!("Session-based e-commerce: M/D/1 classes, deltas (1, 2, 3)\n");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "load%",
        "sim chk",
        "exp chk",
        "sim brw",
        "exp brw",
        "sim srch",
        "exp srch",
        "r2/r1",
        "r3/r1"
    );

    for load in [0.4, 0.6, 0.8] {
        let per_class = load / 3.0;
        let cfg = PsdConfig::new(
            vec![
                ClassConfig { delta: 1.0, load: per_class }, // checkout
                ClassConfig { delta: 2.0, load: per_class }, // browse
                ClassConfig { delta: 3.0, load: per_class }, // search
            ],
            service.clone(),
        )
        .with_horizon(20_000.0, 2_000.0);

        let report = Experiment::new(cfg).runs(10).base_seed(7).run();
        let sim = report.mean_slowdowns();
        let exp = report.expected_slowdowns().expect("M/D/1 closed form exists");

        println!(
            "{:>7.0} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8.2} {:>8.2}",
            load * 100.0,
            sim[0],
            exp[0],
            sim[1],
            exp[1],
            sim[2],
            exp[2],
            sim[1] / sim[0],
            sim[2] / sim[0],
        );
    }

    println!("\nDeterministic service times make the match with Eq. (15) tight:");
    println!("checkout keeps the smallest slowdown, browse 2x, search 3x.");
}
