//! Why not just use strict priority? (paper §5)
//!
//! Priority scheduling differentiates, but the *spacing* between
//! classes is whatever the load dictates — operators cannot set it.
//! This example puts the two analyses side by side:
//!
//! * non-preemptive priority M/G/1 (closed form, `psd_queueing::priority`),
//! * the PSD allocation (Eq. 17/18), target ratio fixed at 2.0,
//!
//! and also cross-checks the simulated strict-priority baseline.
//!
//! Run with: `cargo run --release --example priority_vs_psd`

use psd::core::baselines::StrictPriority;
use psd::core::config::PsdConfig;
use psd::core::simulation::{run_once, run_with_controller};
use psd::dist::{BoundedPareto, ServiceDistribution};
use psd::queueing::PriorityMg1;

fn main() {
    let bp = BoundedPareto::paper_default();
    let m = bp.moments();

    println!("Slowdown ratio class2/class1 (two equal-load classes, target 2.0 for PSD)\n");
    println!(
        "{:>7} {:>18} {:>14} {:>20}",
        "load%", "HOL prio (theory)", "PSD (theory)", "rate-prio (sim)"
    );

    for load in [0.2, 0.4, 0.6, 0.8, 0.9] {
        let lambda = load / 2.0 / m.mean;

        // Theory: strict priority ratio from Cobham's formula.
        let prio = PriorityMg1::homogeneous(vec![lambda, lambda], m).unwrap();
        let prio_ratio = prio.slowdown_ratio(1, 0).unwrap();

        // Simulation: the StrictPriority rate-allocation baseline.
        let cfg = PsdConfig::equal_load(&[1.0, 2.0], load).with_horizon(15_000.0, 2_000.0);
        let (mut s0, mut s1) = (0.0, 0.0);
        for seed in 0..6 {
            let r = run_with_controller(&cfg, seed, Box::new(StrictPriority::new(m.mean, 5)));
            s0 += r.classes[0].mean_slowdown.unwrap_or(0.0);
            s1 += r.classes[1].mean_slowdown.unwrap_or(0.0);
        }
        let sim_ratio = if s0 > 0.0 { s1 / s0 } else { f64::NAN };

        println!("{:>7.0} {:>18.2} {:>14.2} {:>20.2}", load * 100.0, prio_ratio, 2.0, sim_ratio);
    }

    println!("\nBoth priority flavours are uncontrollable: the analytical HOL ratio");
    println!("drifts from 1.25 to 10 as load grows, and the rate-allocation strict");
    println!("priority (all residual capacity to class 1) starves the low class at");
    println!("light load. PSD pins the ratio at delta2/delta1 by construction.");
    println!("\nFor comparison, simulated PSD at 80% load (16 runs, paper horizon):");
    let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.8).with_horizon(61_000.0, 10_000.0);
    let (mut s0, mut s1) = (0.0, 0.0);
    for seed in 0..16 {
        let r = run_once(&cfg, seed);
        s0 += r.classes[0].mean_slowdown.unwrap();
        s1 += r.classes[1].mean_slowdown.unwrap();
    }
    println!("  simulated PSD ratio: {:.2} (target 2.0)", s1 / s0);
}
