//! # psd — proportional slowdown differentiation on Internet servers
//!
//! A full reproduction of **Zhou, Wei & Xu, "Processing Rate Allocation
//! for Proportional Slowdown Differentiation on Internet Servers"
//! (IPDPS 2004)** as a Rust workspace. This facade crate re-exports the
//! member crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`dist`] | Bounded Pareto & friends, exact moments, arrival processes, PRNGs |
//! | [`queueing`] | M/G/1 FCFS analysis: P–K delay, slowdown closed forms (Lemma 1/2, Thm 1) |
//! | [`control`] | the shared control-plane contract: `RateController`, `WindowObservation`, `ControlDirective` |
//! | [`desim`] | discrete-event simulator: fluid task servers, generators, metrics |
//! | [`propshare`] | GPS / WFQ / Lottery / Stride / DRR scheduling substrate |
//! | [`core`] | the paper's contribution: Eq. 17 allocator, Eq. 18 model, estimator, controller |
//! | [`obs`] | observability: span rings, Prometheus exposition, control-decision flight recorder |
//! | [`server`] | threaded Internet-server substrate with online PSD reallocation |
//! | [`loadgen`] | open/closed-loop TCP traffic generator, scenario catalog, slowdown reports |
//!
//! ## The 60-second tour
//!
//! ```
//! use psd::core::config::PsdConfig;
//! use psd::core::experiment::Experiment;
//!
//! // Two classes with differentiation parameters (1, 2) sharing a
//! // 60%-loaded server, Bounded-Pareto service times BP(1.5, 0.1, 100).
//! let cfg = PsdConfig::equal_load(&[1.0, 2.0], 0.6)
//!     .with_horizon(30_000.0, 4_000.0); // shortened for the doctest
//! let report = Experiment::new(cfg).runs(8).base_seed(42).run();
//!
//! let sim = report.mean_slowdowns();
//! let exp = report.expected_slowdowns().unwrap();
//! // The rate-allocation strategy keeps class 2 at about twice the
//! // slowdown of class 1, matching the model's prediction.
//! assert!(sim[1] > sim[0]);
//! assert!((exp[1] / exp[0] - 2.0).abs() < 1e-9);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every figure in the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use psd_control as control;
pub use psd_core as core;
pub use psd_desim as desim;
pub use psd_dist as dist;
pub use psd_loadgen as loadgen;
pub use psd_obs as obs;
pub use psd_propshare as propshare;
pub use psd_queueing as queueing;
pub use psd_server as server;
